"""Simulation models of the paper's soft-state update experiments.

These models replace the paper's physical testbed (LAN cluster, LA→Chicago
WAN path) with the discrete-event kernel, while keeping every quantity
that the experiments actually vary — update sizes, link bandwidth, RTT,
number of concurrent LRCs, serialized RLI ingest — explicit and calibrated:

* **LAN / uncompressed (Figure 12).**  An uncompressed update ships the
  LRC's full logical-name list and the RLI inserts each entry into its
  relational store behind an exclusive latch.  Calibration: the paper
  measures 831 s for one 1 M-entry update on an idle RLI ⇒ an ingest rate
  of ~1200 entries/s, which we adopt.  With k LRCs updating continuously
  the latch serializes them and per-update time grows ~k× — the paper's
  5102 s for 6 LRCs.
* **WAN / Bloom (Table 3, Figure 13).**  A Bloom update ships the packed
  bitmap (10 bits/mapping) over the WAN path; a single TCP stream on a
  63.8 ms RTT with an era-appropriate 64 KiB window is capped at ~8.2 Mb/s,
  which alone reproduces Table 3's 1.67 s (1 M) and 6.8 s (5 M) update
  times.  Filter *generation* time is a real measured cost of our Bloom
  code, not a simulation constant.  Continuous updates from many clients
  additionally contend on the shared link and on serialized RLI filter
  ingest (Figure 13's rise past ~7 clients).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.bloom import BloomFilter, BloomParameters
from repro.sim.kernel import Simulator
from repro.sim.network import NetworkPath, SharedLink, tcp_window_cap_bps
from repro.sim.resources import Resource


@dataclass
class LANCalibration:
    """Constants for the Figure 12 (uncompressed, LAN) experiment."""

    bandwidth_bps: float = 100e6  # 100 Mb/s Ethernet
    rtt: float = 0.2e-3
    #: Wire bytes per logical name in an uncompressed update (name + framing).
    bytes_per_entry: float = 80.0
    #: RLI relational ingest rate, entries/s (831 s per 1M entries, §5.5).
    rli_ingest_entries_per_sec: float = 1_000_000 / 831.0


@dataclass
class WANCalibration:
    """Constants for the Table 3 / Figure 13 (Bloom, WAN) experiments."""

    bandwidth_bps: float = 100e6
    rtt: float = 0.0638  # LA -> Chicago mean RTT (§5.5)
    tcp_window_bytes: float = 64 * 1024
    bloom_bits_per_entry: int = 10
    #: RLI-side cost to receive+install one filter, seconds per MiB.
    #: Calibrated from Figure 13 via the interactive response-time law:
    #: at saturation R = N*S, and the paper's 14 clients / 11.5 s mean
    #: update time gives S ≈ 0.82 s per 5M-entry (5.96 MiB) filter.
    ingest_seconds_per_mib: float = 0.1375
    #: Relative jitter (±fraction, seeded) on ingest service times.  A
    #: deterministic closed loop self-synchronizes into a D/D/1 system with
    #: zero queueing; the real server's service-time variability is what
    #: produces the contention the paper sees past ~7 clients (§5.5).
    service_jitter: float = 0.5
    jitter_seed: int = 20040607


@dataclass
class UpdateTimesResult:
    """Per-client mean update times from a continuous-update simulation."""

    num_lrcs: int
    entries_per_lrc: int
    mean_update_time: float
    per_update_times: list[float] = field(repr=False, default_factory=list)
    update_bytes: float = 0.0


def _run_continuous_updates(
    sim: Simulator,
    path: NetworkPath,
    ingest: Resource,
    num_clients: int,
    update_bytes: float,
    ingest_service_time: float,
    rounds: int,
    service_jitter: float = 0.0,
    jitter_seed: int = 0,
) -> list[float]:
    """Clients send updates back-to-back; returns steady-state durations.

    "Each LRC sends wide area ... updates continuously (i.e., a new update
    begins as soon as the previous update completes)" (§5.5).  The first
    round is warm-up (clients start synchronized, which is unrealistically
    pessimal); later rounds reflect steady state.  ``service_jitter``
    spreads ingest times uniformly by ±fraction with a fixed seed, so runs
    stay exactly reproducible.
    """
    import random

    rng = random.Random(jitter_seed)
    durations: list[float] = []

    def client() -> object:
        for round_no in range(rounds):
            start = sim.now
            yield sim.process(path.send(update_bytes))
            yield ingest.acquire()
            try:
                service = ingest_service_time
                if service_jitter > 0:
                    service *= 1.0 + service_jitter * (2.0 * rng.random() - 1.0)
                yield sim.timeout(service)
            finally:
                ingest.release()
            if round_no > 0:  # skip the synchronized-start warm-up round
                durations.append(sim.now - start)

    processes = [sim.process(client()) for _ in range(num_clients)]
    sim.run(sim.all_of(processes))
    return durations


def uncompressed_update_times(
    entries_per_lrc: int,
    num_lrcs: int,
    rounds: int = 3,
    calib: LANCalibration | None = None,
) -> UpdateTimesResult:
    """Figure 12 model: full uncompressed updates to one RLI over the LAN."""
    calib = calib or LANCalibration()
    sim = Simulator()
    path = NetworkPath(rtt=calib.rtt, link=SharedLink(sim, calib.bandwidth_bps))
    ingest = Resource(sim, capacity=1)  # exclusive relational-store latch
    update_bytes = entries_per_lrc * calib.bytes_per_entry
    service = entries_per_lrc / calib.rli_ingest_entries_per_sec
    durations = _run_continuous_updates(
        sim, path, ingest, num_lrcs, update_bytes, service, rounds
    )
    return UpdateTimesResult(
        num_lrcs=num_lrcs,
        entries_per_lrc=entries_per_lrc,
        mean_update_time=sum(durations) / len(durations),
        per_update_times=durations,
        update_bytes=update_bytes,
    )


def bloom_filter_size_bits(entries: int, bits_per_entry: int = 10) -> int:
    """Paper sizing: ~10 bits per LRC mapping (Table 3 column 4)."""
    return BloomParameters.for_entries(entries, bits_per_entry).num_bits


def bloom_update_times_wan(
    entries_per_lrc: int,
    num_clients: int,
    rounds: int = 10,
    calib: WANCalibration | None = None,
) -> UpdateTimesResult:
    """Figure 13 model: continuous Bloom updates over the WAN."""
    calib = calib or WANCalibration()
    sim = Simulator()
    cap = tcp_window_cap_bps(calib.tcp_window_bytes, calib.rtt)
    path = NetworkPath(
        rtt=calib.rtt,
        link=SharedLink(sim, calib.bandwidth_bps, per_flow_cap_bps=cap),
    )
    ingest = Resource(sim, capacity=1)
    update_bytes = bloom_filter_size_bits(
        entries_per_lrc, calib.bloom_bits_per_entry
    ) / 8.0
    service = (update_bytes / (1024 * 1024)) * calib.ingest_seconds_per_mib
    durations = _run_continuous_updates(
        sim,
        path,
        ingest,
        num_clients,
        update_bytes,
        service,
        rounds,
        service_jitter=calib.service_jitter,
        jitter_seed=calib.jitter_seed,
    )
    return UpdateTimesResult(
        num_lrcs=num_clients,
        entries_per_lrc=entries_per_lrc,
        mean_update_time=sum(durations) / len(durations),
        per_update_times=durations,
        update_bytes=update_bytes,
    )


@dataclass
class BloomUpdateRow:
    """One row of Table 3."""

    entries: int
    update_time: float  # simulated WAN soft-state update, single client
    generation_time: float  # REAL measured filter build on this machine
    filter_bits: int


def bloom_table3_row(
    entries: int,
    measure_generation: bool = True,
    generation_sample: int | None = None,
    calib: WANCalibration | None = None,
) -> BloomUpdateRow:
    """Compute one Table 3 row.

    ``generation_time`` builds a real filter over ``entries`` names (or a
    ``generation_sample`` subset, linearly extrapolated, to keep huge rows
    affordable); ``update_time`` is the simulated single-client WAN push.
    """
    calib = calib or WANCalibration()
    result = bloom_update_times_wan(entries, num_clients=1, rounds=2, calib=calib)
    generation_time = float("nan")
    if measure_generation:
        sample = min(entries, generation_sample or entries)
        params = BloomParameters.for_entries(entries, calib.bloom_bits_per_entry)
        names = (f"lfn{i:09d}" for i in range(sample))
        start = time.perf_counter()
        BloomFilter.from_names(names, params)
        measured = time.perf_counter() - start
        generation_time = measured * (entries / sample)
    return BloomUpdateRow(
        entries=entries,
        update_time=result.mean_update_time,
        generation_time=generation_time,
        filter_bits=bloom_filter_size_bits(entries, calib.bloom_bits_per_entry),
    )
