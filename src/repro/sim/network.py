"""Network models: processor-sharing links and TCP-capped paths.

Two effects dominate the paper's wide-area numbers:

* the shared bottleneck link — concurrent soft-state updates divide the
  available bandwidth (processor sharing), which is why 6 LRCs pushing
  full updates to one RLI take ~6x longer each (Figure 12);
* the TCP window / RTT throughput cap — on the 63.8 ms LA→Chicago path a
  single TCP stream with an early-2000s 64 KiB window moves only ~8 Mb/s
  regardless of the 100 Mb/s link, which is why one 5 M-entry Bloom filter
  (≈50 Mb) takes ~6.5 s (Table 3, Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import Event, Simulator


class SharedLink:
    """A link whose bandwidth is fairly shared by concurrent transfers.

    Implements ideal processor sharing with an optional per-flow rate cap
    (the TCP window limit).  Each transfer is an :class:`Event` that
    triggers when its last byte clears the link.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float,
        per_flow_cap_bps: float | None = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.per_flow_cap_bps = per_flow_cap_bps
        self._flows: dict[int, _Flow] = {}
        self._next_flow_id = 0
        self._last_update = 0.0
        self._wakeup_generation = 0
        self.bytes_carried = 0.0
        self.completed_transfers = 0

    # -- public API --------------------------------------------------------

    def transfer(self, size_bytes: float) -> Event:
        """Start a transfer of ``size_bytes``; returns its completion event."""
        if size_bytes < 0:
            raise ValueError("negative transfer size")
        self._advance()
        event = Event(self.sim)
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self._flows[flow_id] = _Flow(
            remaining_bits=size_bytes * 8.0, event=event
        )
        self.bytes_carried += size_bytes
        if size_bytes == 0:
            self._complete(flow_id)
        else:
            self._reschedule()
        return event

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def current_rate_per_flow(self) -> float:
        """Bits/s each active flow currently receives."""
        n = len(self._flows)
        if n == 0:
            return 0.0
        share = self.bandwidth_bps / n
        if self.per_flow_cap_bps is not None:
            share = min(share, self.per_flow_cap_bps)
        return share

    # -- internals -----------------------------------------------------------

    def _advance(self) -> None:
        """Charge elapsed time against every active flow."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._flows:
            return
        rate = self.current_rate_per_flow()
        drained = rate * elapsed
        for flow in self._flows.values():
            flow.remaining_bits = max(0.0, flow.remaining_bits - drained)

    def _reschedule(self) -> None:
        """Schedule a wakeup at the next flow completion time."""
        self._wakeup_generation += 1
        generation = self._wakeup_generation
        if not self._flows:
            return
        rate = self.current_rate_per_flow()
        min_remaining = min(f.remaining_bits for f in self._flows.values())
        delay = min_remaining / rate if rate > 0 else float("inf")

        def wakeup() -> None:
            if generation != self._wakeup_generation:
                return  # superseded by a newer flow arrival/departure
            self._advance()
            # Complete flows with less than half a bit left: below the
            # resolution of any real transfer, and guards against float
            # residues scheduling wakeup delays smaller than the clock's
            # ulp (which would stall virtual time).
            finished = [
                fid
                for fid, flow in self._flows.items()
                if flow.remaining_bits <= 0.5
            ]
            for fid in finished:
                self._complete(fid)
            self._reschedule()

        self.sim.schedule(delay, wakeup)

    def _complete(self, flow_id: int) -> None:
        flow = self._flows.pop(flow_id)
        self.completed_transfers += 1
        flow.event.succeed()


@dataclass
class _Flow:
    remaining_bits: float
    event: Event


@dataclass(frozen=True)
class NetworkPath:
    """End-to-end path parameters between an LRC site and an RLI site."""

    rtt: float  # seconds, round-trip
    link: SharedLink

    def send(self, size_bytes: float):
        """Process generator: propagate + transfer ``size_bytes``.

        Models one request/transfer exchange: half an RTT of propagation
        for the first byte, then the (shared, capped) bulk transfer, then
        half an RTT for the acknowledgement — adding up to one full RTT of
        fixed cost per update, matching a blocking RPC over TCP.
        """
        sim = self.link.sim
        yield sim.timeout(self.rtt / 2.0)
        yield self.link.transfer(size_bytes)
        yield sim.timeout(self.rtt / 2.0)


def tcp_window_cap_bps(window_bytes: float, rtt: float) -> float:
    """Classic TCP throughput bound: one window per round trip."""
    if rtt <= 0:
        return float("inf")
    return window_bytes * 8.0 / rtt


def lan_path(sim: Simulator, bandwidth_bps: float = 100e6, rtt: float = 0.2e-3) -> NetworkPath:
    """The paper's 100 Mb/s Ethernet LAN (sub-millisecond RTT)."""
    return NetworkPath(rtt=rtt, link=SharedLink(sim, bandwidth_bps))


def wan_path(
    sim: Simulator,
    bandwidth_bps: float = 100e6,
    rtt: float = 0.0638,
    tcp_window_bytes: float = 64 * 1024,
) -> NetworkPath:
    """The paper's LA→Chicago WAN path: 63.8 ms mean RTT, TCP-window capped."""
    cap = tcp_window_cap_bps(tcp_window_bytes, rtt)
    return NetworkPath(rtt=rtt, link=SharedLink(sim, bandwidth_bps, per_flow_cap_bps=cap))
