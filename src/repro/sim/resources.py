"""FIFO resources for the simulation kernel."""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.kernel import Event, Simulator


class Resource:
    """A capacity-limited resource with FIFO queueing.

    Models the serialized parts of the RLS: the RLI's exclusive table latch
    during soft-state ingest (capacity 1) or a bounded server worker pool
    (capacity N).

    Usage inside a process generator::

        request = resource.acquire()
        yield request
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: deque[tuple[float, Event]] = deque()
        # Instrumentation for utilization / queueing analysis.
        self.total_acquisitions = 0
        self.total_wait_time = 0.0
        self._busy_since: float | None = None
        self.total_busy_time = 0.0

    def acquire(self) -> Event:
        """Return an event that triggers when a slot is granted."""
        event = Event(self.sim)
        if self.in_use < self.capacity:
            self._grant(self.sim.now, event)
        else:
            self._waiters.append((self.sim.now, event))
        return event

    def _grant(self, enqueued_at: float, event: Event) -> None:
        self.in_use += 1
        self.total_acquisitions += 1
        self.total_wait_time += self.sim.now - enqueued_at
        if self._busy_since is None:
            self._busy_since = self.sim.now
        event.succeed()

    def release(self) -> None:
        """Free one slot; the oldest waiter (if any) is granted it."""
        if self.in_use <= 0:
            raise RuntimeError("release() without acquire()")
        self.in_use -= 1
        if self.in_use == 0 and self._busy_since is not None:
            self.total_busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        if self._waiters:
            enqueued_at, event = self._waiters.popleft()
            self._grant(enqueued_at, event)

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def mean_wait(self) -> float:
        if self.total_acquisitions == 0:
            return 0.0
        return self.total_wait_time / self.total_acquisitions

    def use(self, service_time: float) -> Any:
        """Generator helper: acquire, hold for ``service_time``, release."""

        def _proc():
            yield self.acquire()
            try:
                yield self.sim.timeout(service_time)
            finally:
                self.release()

        return self.sim.process(_proc())
