"""Whole-deployment RLS simulation in virtual time.

The real implementation measures what a wall clock allows; this module
simulates complete LRC/RLI deployments over *hours* of virtual time to
answer questions the paper raises but could not measure:

* **Staleness** (§3.2/§3.3): "there is some delay between when changes are
  made in LRC mappings and when those changes are reflected in RLIs."
  :func:`staleness_experiment` drives a churning catalog under a chosen
  update policy and samples how often an RLI answer is wrong (misses a
  fresh name or still advertises a dead one).
* **Soft-state recovery** (§2): "If an RLI fails and later resumes
  operation, its state can be reconstructed using soft state updates."
  :func:`recovery_experiment` crashes the index and measures how long
  until its coverage returns, as a function of the full-update interval.

Everything is deterministic (seeded RNG, virtual clock), so these are
reproducible experiments, not Monte Carlo noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.obs.timeseries import SeriesStore
from repro.sim.kernel import Simulator
from repro.sim.network import NetworkPath, SharedLink
from repro.sim.resources import Resource


@dataclass
class SimPolicy:
    """Update policy knobs mirrored from :class:`repro.core.UpdatePolicy`."""

    mode: str = "immediate"  # "full-only" | "immediate" | "bloom"
    immediate_interval: float = 30.0
    full_interval: float = 600.0
    rli_timeout: float = 1800.0
    #: Wire cost model (matches the LAN calibration).
    bytes_per_name: float = 80.0
    bloom_bits_per_entry: int = 10
    #: RLI ingest rate for uncompressed entries (entries/second).
    ingest_entries_per_sec: float = 1203.0
    #: RLI ingest cost per MiB of Bloom bitmap.
    bloom_ingest_s_per_mib: float = 0.1375


class SimLRC:
    """A catalog with churn: names are created and destroyed over time."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        initial_names: int,
        churn_per_sec: float,
        rng: random.Random,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rng = rng
        self.churn_per_sec = churn_per_sec
        self._counter = initial_names
        self.names: set[str] = {f"{name}/f{i}" for i in range(initial_names)}
        self.pending_added: set[str] = set()
        self.pending_removed: set[str] = set()
        if churn_per_sec > 0:
            sim.process(self._churn())

    def _churn(self):
        while True:
            # Exponential inter-arrival; alternate adds and deletes so the
            # catalog size stays roughly constant.
            yield self.sim.timeout(
                self.rng.expovariate(self.churn_per_sec)
            )
            if self.rng.random() < 0.5 or not self.names:
                fresh = f"{self.name}/f{self._counter}"
                self._counter += 1
                self.names.add(fresh)
                self.pending_added.add(fresh)
                self.pending_removed.discard(fresh)
            else:
                victim = self.rng.choice(sorted(self.names))
                self.names.discard(victim)
                self.pending_removed.add(victim)
                self.pending_added.discard(victim)

    def take_delta(self) -> tuple[set[str], set[str]]:
        added, removed = self.pending_added, self.pending_removed
        self.pending_added, self.pending_removed = set(), set()
        return added, removed


class SimRLI:
    """Index state: name -> expiry time, with crash/restart support."""

    def __init__(self, sim: Simulator, policy: SimPolicy) -> None:
        self.sim = sim
        self.policy = policy
        self.entries: dict[str, float] = {}
        self.up = True
        self.ingest = Resource(sim, capacity=1)
        self.updates_applied = 0
        # Virtual time of the newest applied update — the simulated twin
        # of ReplicaLocationIndex._last_update_at.
        self.last_update_at: float | None = None

    def crash(self) -> None:
        """Lose all soft state (an RLI restart, §2)."""
        self.entries.clear()
        self.up = False
        self.last_update_at = None

    def restart(self) -> None:
        self.up = True

    def staleness_age(self) -> float:
        """Virtual seconds since the last applied update (0 before any)."""
        if self.last_update_at is None:
            return 0.0
        return max(0.0, self.sim.now - self.last_update_at)

    def apply_full(self, names) -> None:
        if not self.up:
            return
        expiry = self.sim.now + self.policy.rli_timeout
        for name in names:
            self.entries[name] = expiry
        self.updates_applied += 1
        self.last_update_at = self.sim.now

    def apply_delta(self, added, removed) -> None:
        if not self.up:
            return
        expiry = self.sim.now + self.policy.rli_timeout
        for name in added:
            self.entries[name] = expiry
        for name in removed:
            self.entries.pop(name, None)
        self.updates_applied += 1
        self.last_update_at = self.sim.now

    def apply_bloom(self, names) -> None:
        """Bloom replacement: the new filter IS the new state (no FP model
        here — staleness, not FP rate, is what this experiment isolates)."""
        if not self.up:
            return
        expiry = self.sim.now + self.policy.rli_timeout
        self.entries = {name: expiry for name in names}
        self.updates_applied += 1
        self.last_update_at = self.sim.now

    def contains(self, name: str) -> bool:
        expiry = self.entries.get(name)
        return expiry is not None and expiry > self.sim.now


@dataclass
class StalenessResult:
    """Outcome of one staleness experiment."""

    mode: str
    samples: int
    stale_fraction: float       # wrong answers / samples
    miss_fraction: float        # fresh names the RLI did not know yet
    ghost_fraction: float       # deleted names the RLI still advertised
    bytes_sent: float
    updates_sent: int
    #: Pushes lost to injected faults (0 without a failure schedule).
    updates_failed: int = 0
    #: Virtual-time trajectory of the run (probe-interval resolution):
    #: ``rli.staleness_age`` and the running ``probe.stale_fraction`` —
    #: detector-ready input for :func:`repro.obs.analyze.analyze_store`.
    store: SeriesStore = field(repr=False, default_factory=SeriesStore)


def _update_proc(
    sim, lrc: SimLRC, rli: SimRLI, path, policy: SimPolicy, stats, faults=None
):
    """LRC-side update scheduler, mirroring UpdateManager semantics.

    ``faults`` is an optional :class:`repro.testing.FailureSchedule`: one
    slot is consumed per push, and a scheduled failure loses that push
    *after* it crossed the wire (bytes still count).  Failure handling
    mirrors the live manager: a lost incremental re-queues its delta
    (newer catalog intents win), a lost full/Bloom flags ``needs_full`` so
    the next cycle sends a fresh full instead of a delta.
    """

    def requeue(added, removed):
        # Fold the undelivered delta back without clobbering newer
        # intents; the authoritative catalog filters out stale ones.
        for name in added:
            if name not in lrc.pending_removed and name in lrc.names:
                lrc.pending_added.add(name)
        for name in removed:
            if name not in lrc.pending_added and name not in lrc.names:
                lrc.pending_removed.add(name)

    def send(names_count: int, apply, on_fail=None):
        def proc():
            if policy.mode == "bloom":
                size = names_count * policy.bloom_bits_per_entry / 8.0
                service = (size / (1024 * 1024)) * policy.bloom_ingest_s_per_mib
            else:
                size = names_count * policy.bytes_per_name
                service = names_count / policy.ingest_entries_per_sec
            stats["bytes"] += size
            stats["updates"] += 1
            yield sim.process(path.send(size))
            if faults is not None and faults.next_outcome():
                stats["failed"] = stats.get("failed", 0) + 1
                if on_fail is not None:
                    on_fail()
                return
            yield rli.ingest.acquire()
            try:
                yield sim.timeout(service)
            finally:
                rli.ingest.release()
            apply()

        return sim.process(proc())

    state = {"needs_full": False}

    def fail_full():
        state["needs_full"] = True

    def scheduler():
        last_full = sim.now
        while True:
            if policy.mode == "immediate":
                yield sim.timeout(policy.immediate_interval)
                if (
                    sim.now - last_full >= policy.full_interval
                    or state["needs_full"]
                ):
                    state["needs_full"] = False
                    snapshot = set(lrc.names)
                    lrc.take_delta()
                    yield send(
                        len(snapshot),
                        lambda s=snapshot: rli.apply_full(s),
                        on_fail=fail_full,
                    )
                    last_full = sim.now
                else:
                    added, removed = lrc.take_delta()
                    if added or removed:
                        yield send(
                            len(added) + len(removed),
                            lambda a=added, r=removed: rli.apply_delta(a, r),
                            on_fail=lambda a=added, r=removed: requeue(a, r),
                        )
            elif policy.mode == "bloom":
                yield sim.timeout(policy.immediate_interval)
                snapshot = set(lrc.names)
                lrc.take_delta()
                yield send(
                    len(snapshot), lambda s=snapshot: rli.apply_bloom(s)
                )
            else:  # full-only
                yield sim.timeout(policy.full_interval)
                snapshot = set(lrc.names)
                lrc.take_delta()
                yield send(
                    len(snapshot),
                    lambda s=snapshot: rli.apply_full(s),
                    on_fail=fail_full,
                )

    return sim.process(scheduler())


def staleness_experiment(
    mode: str,
    catalog_size: int = 10_000,
    churn_per_sec: float = 2.0,
    duration: float = 4 * 3600.0,
    probe_interval: float = 10.0,
    immediate_interval: float = 30.0,
    full_interval: float = 600.0,
    seed: int = 42,
    faults=None,
) -> StalenessResult:
    """Measure RLI answer quality under churn for one update mode.

    A probe process samples one live name and one recently-deleted name
    every ``probe_interval``; the stale fraction counts RLI answers that
    disagree with the (authoritative) catalog.

    ``faults`` (a :class:`repro.testing.FailureSchedule`) injects push
    failures into the update path: failed deltas re-queue, failed fulls
    re-send next cycle — measuring how flaky delivery degrades freshness.
    """
    sim = Simulator()
    rng = random.Random(seed)
    policy = SimPolicy(
        mode=mode,
        immediate_interval=immediate_interval,
        full_interval=full_interval,
    )
    lrc = SimLRC(sim, "lrc0", catalog_size, churn_per_sec, rng)
    rli = SimRLI(sim, policy)
    path = NetworkPath(rtt=0.2e-3, link=SharedLink(sim, 100e6))
    stats = {"bytes": 0.0, "updates": 0, "failed": 0}
    _update_proc(sim, lrc, rli, path, policy, stats, faults=faults)
    # Seed the index with an initial full update, applied instantly.
    rli.apply_full(lrc.names)

    counters = {"samples": 0, "miss": 0, "ghost": 0}
    recently_deleted: list[str] = []
    store = SeriesStore()

    def probe():
        probe_rng = random.Random(seed + 1)
        while True:
            yield sim.timeout(probe_interval)
            if lrc.names:
                live = probe_rng.choice(sorted(lrc.names))
                counters["samples"] += 1
                if not rli.contains(live):
                    counters["miss"] += 1
            recently_deleted.extend(lrc.pending_removed)
            del recently_deleted[:-50]
            if recently_deleted:
                dead = probe_rng.choice(recently_deleted)
                if dead not in lrc.names:
                    counters["samples"] += 1
                    if rli.contains(dead):
                        counters["ghost"] += 1
            # Trajectory on the *virtual* clock — same series keys the
            # live collector records, so the detectors run unchanged.
            store.record("rli.staleness_age", sim.now, rli.staleness_age())
            if counters["samples"]:
                store.record(
                    "probe.stale_fraction",
                    sim.now,
                    (counters["miss"] + counters["ghost"])
                    / counters["samples"],
                )

    sim.process(probe())
    sim.run(until=duration)
    samples = max(counters["samples"], 1)
    return StalenessResult(
        mode=mode,
        samples=counters["samples"],
        stale_fraction=(counters["miss"] + counters["ghost"]) / samples,
        miss_fraction=counters["miss"] / samples,
        ghost_fraction=counters["ghost"] / samples,
        bytes_sent=stats["bytes"],
        updates_sent=stats["updates"],
        updates_failed=stats["failed"],
        store=store,
    )


@dataclass
class RecoveryResult:
    """Outcome of one crash-recovery experiment."""

    full_interval: float
    crash_time: float
    recovery_time: float  # seconds from restart to >=99% coverage
    coverage_curve: list[tuple[float, float]] = field(repr=False, default_factory=list)


def recovery_experiment(
    full_interval: float = 600.0,
    num_lrcs: int = 4,
    catalog_size: int = 5_000,
    crash_at: float = 1000.0,
    seed: int = 7,
) -> RecoveryResult:
    """Crash the RLI, restart it, and time the soft-state rebuild (§2).

    Each LRC pushes full updates on its own phase-shifted schedule; after
    the restart, coverage climbs as each LRC's next update lands.  With k
    LRCs uniformly phased, expected recovery is ~full_interval x (k is
    irrelevant for the *last* LRC: worst case one full interval).
    """
    sim = Simulator()
    rng = random.Random(seed)
    policy = SimPolicy(mode="full-only", full_interval=full_interval)
    rli = SimRLI(sim, policy)
    path = NetworkPath(rtt=0.2e-3, link=SharedLink(sim, 100e6))
    lrcs = [
        SimLRC(sim, f"lrc{i}", catalog_size, churn_per_sec=0.0, rng=rng)
        for i in range(num_lrcs)
    ]
    stats = {"bytes": 0.0, "updates": 0}

    # Phase-shift each LRC's schedule so updates are spread across the
    # interval (as independent daemons would be).
    def delayed_scheduler(lrc: SimLRC, phase: float):
        def proc():
            yield sim.timeout(phase)
            _update_proc(sim, lrc, rli, path, policy, stats)

        return sim.process(proc())

    for i, lrc in enumerate(lrcs):
        delayed_scheduler(lrc, phase=(i / num_lrcs) * full_interval)
        rli.apply_full(lrc.names)  # initial state

    total_names = sum(len(l.names) for l in lrcs)
    curve: list[tuple[float, float]] = []
    state = {"restart_at": None, "recovered_at": None}

    def crash_then_watch():
        yield sim.timeout(crash_at)
        rli.crash()
        rli.restart()  # soft state: no recovery protocol, just wait
        state["restart_at"] = sim.now
        while True:
            yield sim.timeout(5.0)
            coverage = (
                sum(1 for l in lrcs for n in l.names if rli.contains(n))
                / total_names
            )
            curve.append((sim.now - state["restart_at"], coverage))
            if coverage >= 0.99 and state["recovered_at"] is None:
                state["recovered_at"] = sim.now
                return

    sim.process(crash_then_watch())
    sim.run(until=crash_at + 4 * full_interval)
    recovered = state["recovered_at"]
    recovery_time = (
        (recovered - state["restart_at"]) if recovered is not None else float("inf")
    )
    return RecoveryResult(
        full_interval=full_interval,
        crash_time=crash_at,
        recovery_time=recovery_time,
        coverage_curve=curve,
    )
