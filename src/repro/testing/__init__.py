"""Fault injection for tests, experiments, and the simulator.

One shared vocabulary of failure modes: a scriptable
:class:`FailureSchedule` decides *when* to fail, and the
:class:`FlakyChannel` / :class:`FlakySink` wrappers decide *where* —
the RPC transport or the soft-state update path.  Unit tests, the
integration suite, and :mod:`repro.sim.rls_sim` experiments all drive
the same schedules, so a failure shape proven in a fast unit test is the
same shape the simulator replays over hours of virtual time.
"""

from repro.testing.faults import (
    FailureSchedule,
    FaultInjected,
    FlakyChannel,
    FlakySink,
)

__all__ = [
    "FailureSchedule",
    "FaultInjected",
    "FlakyChannel",
    "FlakySink",
]
