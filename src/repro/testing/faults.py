"""Scriptable failure schedules and flaky transport/sink wrappers.

A :class:`FailureSchedule` is a deterministic script of which operations
fail: ``FailureSchedule.pattern("FF.")`` fails the first two attempts and
lets every later one through — exactly the "RLI failing 2 of 3 pushes"
scenario the acceptance tests replay.  Wrappers consume one schedule slot
per operation and raise :class:`FaultInjected` (a ``ConnectionError``, so
the retry layer classifies it as transient) on scheduled failures.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.net.messages import Request, Response
from repro.net.transport import Channel


class FaultInjected(ConnectionError):
    """The scripted failure raised by flaky wrappers.

    Subclasses ``ConnectionError`` so production retry/health logic treats
    injected faults exactly like real transport failures.
    """


class FailureSchedule:
    """A deterministic script of per-operation failures.

    ``outcomes[i]`` decides operation ``i`` (True = fail); operations past
    the end of the script use ``default`` (False = succeed).  Thread-safe:
    concurrent callers each consume a distinct slot.
    """

    def __init__(
        self, outcomes: Sequence[bool] = (), default: bool = False
    ) -> None:
        self.outcomes = list(outcomes)
        self.default = default
        self.calls = 0
        self.failures = 0
        self._lock = threading.Lock()

    @classmethod
    def pattern(cls, text: str, default: bool = False) -> "FailureSchedule":
        """Build from a compact script: ``F`` fails, ``.`` (or ``S``) succeeds."""
        return cls([ch in "Ff" for ch in text], default=default)

    @classmethod
    def fail_first(cls, n: int) -> "FailureSchedule":
        """Fail the first ``n`` operations, then succeed forever."""
        return cls([True] * n)

    @classmethod
    def always(cls) -> "FailureSchedule":
        """Every operation fails (a dead target)."""
        return cls(default=True)

    def next_outcome(self) -> bool:
        """Consume one slot; True means this operation must fail."""
        with self._lock:
            index = self.calls
            self.calls += 1
            fail = (
                self.outcomes[index]
                if index < len(self.outcomes)
                else self.default
            )
            if fail:
                self.failures += 1
            return fail

    def check(self, what: str = "operation") -> None:
        """Consume one slot, raising :class:`FaultInjected` on failure."""
        if self.next_outcome():
            raise FaultInjected(f"injected fault: {what} #{self.calls - 1}")


class FlakyChannel(Channel):
    """A :class:`Channel` whose requests fail on schedule.

    By default a scheduled failure raises *before* the request reaches the
    inner channel (the network ate it).  ``fail_after=True`` instead
    forwards the request and then raises — the reply was lost, so the
    server state changed but the client cannot know.  Both modes matter:
    retry logic must survive either.
    """

    def __init__(
        self,
        inner: Channel,
        schedule: FailureSchedule,
        fail_after: bool = False,
        make_error: Callable[[str], BaseException] | None = None,
    ) -> None:
        self.inner = inner
        self.schedule = schedule
        self.fail_after = fail_after
        self.make_error = make_error or (lambda msg: FaultInjected(msg))
        self.requests_seen = 0

    def request(self, request: Request) -> Response:
        self.requests_seen += 1
        fail = self.schedule.next_outcome()
        if fail and not self.fail_after:
            raise self.make_error(f"request dropped: {request.method}")
        response = self.inner.request(request)
        if fail:
            raise self.make_error(f"reply lost: {request.method}")
        return response

    def close(self) -> None:
        self.inner.close()


class FlakySink:
    """An :class:`~repro.core.updates.UpdateSink` wrapper failing on schedule.

    Records every *delivered* update (same shape as the test suite's
    recording sinks) so assertions can distinguish "pushed and failed"
    from "pushed and landed".  One schedule slot is consumed per push,
    whatever its flavour.
    """

    def __init__(self, inner, schedule: FailureSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        self.full: list[tuple] = []
        self.incremental: list[tuple] = []
        self.bloom: list[tuple] = []

    def full_update(self, lrc_name, lfns) -> None:
        self.schedule.check("full_update")
        self.inner.full_update(lrc_name, lfns)
        self.full.append((lrc_name, list(lfns)))

    def incremental_update(self, lrc_name, added, removed) -> None:
        self.schedule.check("incremental_update")
        self.inner.incremental_update(lrc_name, added, removed)
        self.incremental.append((lrc_name, list(added), list(removed)))

    def bloom_update(
        self, lrc_name, bitmap, num_bits, num_hashes, approx_entries
    ) -> None:
        self.schedule.check("bloom_update")
        self.inner.bloom_update(
            lrc_name, bitmap, num_bits, num_hashes, approx_entries
        )
        self.bloom.append((lrc_name, num_bits, num_hashes, approx_entries))


class NullSink:
    """A sink that accepts and discards everything (for pure-failure tests)."""

    def full_update(self, lrc_name, lfns) -> None:
        pass

    def incremental_update(self, lrc_name, added, removed) -> None:
        pass

    def bloom_update(
        self, lrc_name, bitmap, num_bits, num_hashes, approx_entries
    ) -> None:
        pass
