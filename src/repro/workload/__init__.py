"""Workload generation and load driving.

Provides the multi-client / multi-thread load driver the paper describes
in §4 ("a multi-threaded client program ... that allows the user to
specify the number of threads that submit requests to a server and the
types of operations to perform"), name generators modelled on the
deployments of §6 (LIGO, Earth System Grid, Pegasus), and the trial
protocol (several trials, mean rate, database size held constant).
"""

from repro.workload.names import (
    MappingSet,
    esg_names,
    ligo_names,
    pegasus_names,
    sequential_names,
)
from repro.workload.driver import LoadDriver, LoadResult
from repro.workload.stats import TrialStats, summarize
from repro.workload.scenarios import (
    loaded_lrc_server,
    loaded_rli_server_bloom,
    loaded_rli_server_uncompressed,
)

__all__ = [
    "LoadDriver",
    "LoadResult",
    "MappingSet",
    "TrialStats",
    "esg_names",
    "ligo_names",
    "loaded_lrc_server",
    "loaded_rli_server_bloom",
    "loaded_rli_server_uncompressed",
    "pegasus_names",
    "sequential_names",
    "summarize",
]
