"""Multi-client / multi-thread load driver (§4).

Reproduces the paper's measurement methodology: N clients, each with M
threads, all submitting operations to one server; the rate is total
operations divided by the wall-clock time from the synchronized start to
the last completion.  Each thread gets its own connection, like the
threads of the paper's C client.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.client import RLSClient, connect

#: An operation body: receives (client, operation_index) and performs one op.
Operation = Callable[[RLSClient, int], None]


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load-driver run."""

    operations: int
    elapsed: float
    errors: int
    per_thread_ops: tuple[int, ...] = ()

    @property
    def rate(self) -> float:
        """Operations per second."""
        return self.operations / self.elapsed if self.elapsed > 0 else 0.0


@dataclass
class LoadDriver:
    """Drives one operation type against a named server endpoint.

    Parameters mirror the paper's experiments: ``clients`` x
    ``threads_per_client`` concurrent requesters, ``total_operations``
    split evenly among the threads (the paper uses 3000 for add trials and
    20000+ for query trials).
    """

    server_name: str
    clients: int = 1
    threads_per_client: int = 10
    total_operations: int = 3000
    credential: bytes | None = None
    #: Factory so tests can stub connections; default opens local channels.
    connect_fn: Callable[[str, bytes | None], RLSClient] = field(
        default=lambda name, cred: connect(name, cred)
    )

    def run(self, operation: Operation) -> LoadResult:
        """Execute the workload; returns aggregate counts and elapsed time.

        Operation indexes are globally unique across threads, so workloads
        that must not collide (e.g. adds of distinct names) can key on
        them.  Operations raising exceptions are counted as errors and do
        not stop the run — matching a measurement client that logs failures.
        """
        num_threads = self.clients * self.threads_per_client
        if num_threads <= 0:
            raise ValueError("need at least one thread")
        ops_per_thread = self.total_operations // num_threads
        remainder = self.total_operations % num_threads

        barrier = threading.Barrier(num_threads + 1)
        errors = [0] * num_threads
        done_ops = [0] * num_threads
        connections: list[RLSClient] = [
            self.connect_fn(self.server_name, self.credential)
            for _ in range(num_threads)
        ]

        def worker(thread_id: int, start_index: int, count: int) -> None:
            client = connections[thread_id]
            barrier.wait()
            for i in range(start_index, start_index + count):
                try:
                    operation(client, i)
                except Exception:
                    errors[thread_id] += 1
                done_ops[thread_id] += 1

        threads = []
        next_index = 0
        for tid in range(num_threads):
            count = ops_per_thread + (1 if tid < remainder else 0)
            thread = threading.Thread(
                target=worker,
                args=(tid, next_index, count),
                name=f"load-{self.server_name}-{tid}",
            )
            next_index += count
            threads.append(thread)
            thread.start()

        barrier.wait()  # release all workers simultaneously
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        for client in connections:
            client.close()
        return LoadResult(
            operations=sum(done_ops),
            elapsed=elapsed,
            errors=sum(errors),
            per_thread_ops=tuple(done_ops),
        )

    # ------------------------------------------------------------------
    # Ready-made operation bodies for the paper's three op types
    # ------------------------------------------------------------------

    @staticmethod
    def add_op(lfns: list[str], pfn_of: Callable[[str], str]) -> Operation:
        """Add distinct mappings (create): op i adds ``lfns[i]``."""

        def op(client: RLSClient, i: int) -> None:
            lfn = lfns[i]
            client.create(lfn, pfn_of(lfn))

        return op

    @staticmethod
    def delete_op(lfns: list[str], pfn_of: Callable[[str], str]) -> Operation:
        def op(client: RLSClient, i: int) -> None:
            lfn = lfns[i]
            client.delete(lfn, pfn_of(lfn))

        return op

    @staticmethod
    def query_op(lfns: list[str]) -> Operation:
        """Query existing mappings round-robin over ``lfns``."""
        n = len(lfns)

        def op(client: RLSClient, i: int) -> None:
            client.get_mappings(lfns[i % n])

        return op

    @staticmethod
    def rli_query_op(lfns: list[str]) -> Operation:
        n = len(lfns)

        def op(client: RLSClient, i: int) -> None:
            client.rli_query(lfns[i % n])

        return op

    @staticmethod
    def bulk_query_op(lfns: list[str], batch: int = 1000) -> Operation:
        """One bulk query of ``batch`` names per operation (§5.4)."""
        n = len(lfns)

        def op(client: RLSClient, i: int) -> None:
            start = (i * batch) % n
            names = [lfns[(start + j) % n] for j in range(batch)]
            client.bulk_query(names)

        return op
