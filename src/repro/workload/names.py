"""Logical/target name generators.

Synthetic namespaces shaped like the production deployments in §6 of the
paper: LIGO gravitational-wave frame files, Earth System Grid climate data
and Pegasus workflow products.  All generators are deterministic (seeded)
so benchmark workloads are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence


def sequential_names(
    count: int, prefix: str = "lfn", start: int = 0, width: int = 9
) -> list[str]:
    """Plain numbered names: ``lfn000000000`` ... (the paper's load style)."""
    return [f"{prefix}{i:0{width}d}" for i in range(start, start + count)]


def ligo_names(count: int, start: int = 0) -> list[str]:
    """LIGO-style frame-file names: interferometer + GPS time + duration.

    LIGO "uses the RLS to register and query mappings between 3 million
    logical file names and 30 million physical file locations" (§6).
    """
    names = []
    detectors = ("H1", "L1", "H2")
    gps_base = 700_000_000
    for i in range(start, start + count):
        det = detectors[i % len(detectors)]
        gps = gps_base + (i // len(detectors)) * 16
        names.append(f"{det}-RDS_R_L1-{gps}-16.gwf")
    return names


def esg_names(count: int, start: int = 0) -> list[str]:
    """Earth System Grid style: model / experiment / variable / time slice."""
    models = ("ccsm3", "pcm", "cam3")
    experiments = ("b30.004", "b30.009", "20c3m")
    variables = ("TS", "PRECT", "PSL", "U850")
    names = []
    for i in range(start, start + count):
        model = models[i % len(models)]
        experiment = experiments[(i // 3) % len(experiments)]
        variable = variables[(i // 9) % len(variables)]
        year = 1870 + (i % 130)
        names.append(f"{model}/{experiment}/{variable}/{variable}_{year}01-{year}12.nc")
    return names


def pegasus_names(count: int, start: int = 0, workflow: str = "montage") -> list[str]:
    """Pegasus workflow products: workflow / job / output file."""
    return [
        f"{workflow}/job{(i // 4):06d}/output.{i % 4:d}.fits"
        for i in range(start, start + count)
    ]


def pfn_for(lfn: str, site: str = "site0", replica: int = 0) -> str:
    """Deterministic physical name for a logical name at a site."""
    return f"gsiftp://{site}.example.org/storage/r{replica}/{lfn}"


@dataclass
class MappingSet:
    """A reproducible set of (lfn, pfn) mappings for loading catalogs.

    ``replicas`` physical names are produced per logical name, spread
    round-robin over ``sites`` — e.g. LIGO's 10 PFNs per LFN.
    """

    count: int
    prefix: str = "lfn"
    replicas: int = 1
    sites: Sequence[str] = ("site0",)
    start: int = 0
    #: Default RNG seed for :meth:`random_lfns`; override per set so
    #: different benchmark runs draw distinct (but reproducible) samples.
    seed: int = 1234

    def lfns(self) -> list[str]:
        return sequential_names(self.count, self.prefix, self.start)

    def pairs(self) -> Iterator[tuple[str, str]]:
        """All (lfn, pfn) pairs, first replica first."""
        for lfn in self.lfns():
            for r in range(self.replicas):
                site = self.sites[r % len(self.sites)]
                yield lfn, pfn_for(lfn, site, r)

    def first_replica_pairs(self) -> list[tuple[str, str]]:
        """One (lfn, pfn) per logical name (for ``create`` loading)."""
        return [(lfn, pfn_for(lfn, self.sites[0], 0)) for lfn in self.lfns()]

    def random_lfns(self, n: int, seed: int | None = None) -> list[str]:
        """Uniform sample (with replacement) of logical names to query.

        ``seed`` defaults to this set's :attr:`seed` field.
        """
        rng = random.Random(self.seed if seed is None else seed)
        width = 9
        return [
            f"{self.prefix}{rng.randrange(self.start, self.start + self.count):0{width}d}"
            for _ in range(n)
        ]
