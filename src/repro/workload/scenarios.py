"""Pre-loaded server builders shared by tests, examples and benchmarks.

Each helper constructs an :class:`~repro.core.server.RLSServer` in a known
state matching one of the paper's experimental setups (§4: "for each set
of trials, a server is loaded with a predefined number of mappings").
"""

from __future__ import annotations

from repro.core.config import Backend, ServerConfig, ServerRole
from repro.core.server import RLSServer
from repro.core.updates import UpdatePolicy
from repro.core.bloom import BloomFilter, BloomParameters
from repro.workload.names import MappingSet, sequential_names


def loaded_lrc_server(
    entries: int,
    name: str = "lrc0",
    backend: Backend | str = Backend.MYSQL,
    flush_on_commit: bool = False,
    sync_latency: float = 0.011,
    replicas: int = 1,
) -> tuple[RLSServer, MappingSet]:
    """LRC server pre-loaded with ``entries`` logical names.

    Loading bypasses the RPC layer (direct catalog bulk inserts) because
    the paper also initializes servers out-of-band before measuring.
    """
    config = ServerConfig(
        name=name,
        role=ServerRole.LRC,
        backend=backend,
        flush_on_commit=False,  # load fast; set the real policy afterwards
        sync_latency=sync_latency,
        updates=UpdatePolicy(bloom_expected_entries=max(entries, 1024)),
    )
    server = RLSServer(config)
    mappings = MappingSet(count=entries, replicas=replicas)
    lrc = server.lrc
    assert lrc is not None
    lrc.bulk_load(mappings.pairs())
    # Now apply the flush policy under test.
    if flush_on_commit and hasattr(server.engine, "set_flush_on_commit"):
        server.engine.set_flush_on_commit(True)
    elif flush_on_commit:
        server.engine.wal.flush_on_commit = True
    return server, mappings


def loaded_rli_server_uncompressed(
    mappings_per_lrc: int,
    num_lrcs: int = 1,
    name: str = "rli0",
) -> tuple[RLSServer, list[str]]:
    """RLI pre-populated via full uncompressed updates from ``num_lrcs`` LRCs.

    Returns the server and the logical-name list (shared namespace: every
    LRC reports the same names, as when replicas exist at every site).
    """
    config = ServerConfig(name=name, role=ServerRole.RLI)
    server = RLSServer(config)
    rli = server.rli
    assert rli is not None
    lfns = sequential_names(mappings_per_lrc)
    for i in range(num_lrcs):
        rli.bulk_load(f"lrc{i}", lfns)
    return server, lfns


def loaded_rli_server_bloom(
    entries_per_filter: int,
    num_filters: int = 1,
    name: str = "rli0",
    bits_per_entry: int = 10,
    num_hashes: int = 3,
) -> tuple[RLSServer, list[str]]:
    """RLI holding ``num_filters`` in-memory Bloom filters (Figure 10 setup).

    Each filter indexes the same ``entries_per_filter`` logical names, so
    a query must touch every filter — the worst case the paper measures.
    """
    config = ServerConfig(name=name, role=ServerRole.RLI)
    server = RLSServer(config)
    rli = server.rli
    assert rli is not None
    lfns = sequential_names(entries_per_filter)
    params = BloomParameters.for_entries(
        entries_per_filter, bits_per_entry=bits_per_entry, num_hashes=num_hashes
    )
    bloom = BloomFilter.from_names(lfns, params)
    payload = bloom.to_bytes()
    for i in range(num_filters):
        rli.apply_bloom_update(
            f"lrc{i}", payload, params.num_bits, params.num_hashes, len(lfns)
        )
    return server, lfns
