"""Trial statistics (§4: several trials, mean rate reported)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence


@dataclass(frozen=True)
class TrialStats:
    """Summary over repeated trials of a rate measurement."""

    rates: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.rates) / len(self.rates)

    @property
    def stdev(self) -> float:
        if len(self.rates) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((r - mu) ** 2 for r in self.rates) / (len(self.rates) - 1)
        )

    @property
    def minimum(self) -> float:
        return min(self.rates)

    @property
    def maximum(self) -> float:
        return max(self.rates)

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.mean:.1f} ± {self.stdev:.1f} ops/s (n={len(self.rates)})"


def summarize(rates: Sequence[float]) -> TrialStats:
    if not rates:
        raise ValueError("no trials")
    return TrialStats(tuple(rates))


def run_trials(
    trial: Callable[[], float],
    trials: int = 5,
    reset: Callable[[], None] | None = None,
) -> TrialStats:
    """Run ``trial`` (returning an ops/s rate) ``trials`` times.

    ``reset`` restores pre-trial state between runs — the paper keeps the
    database size "relatively constant during a performance test", e.g. by
    deleting the mappings added in each add trial.
    """
    rates = []
    for i in range(trials):
        rates.append(trial())
        if reset is not None and i != trials - 1:
            reset()
    return summarize(rates)
