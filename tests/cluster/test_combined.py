"""Combined routing client: owner routing, scatter-gather, failover."""

from __future__ import annotations

import random

import pytest

from repro.cluster.combined import (
    RO_METHODS,
    WRITE_METHODS,
    CombinedClient,
    combined_from_server,
)
from repro.cluster.ring import ShardMap
from repro.core.client import connect
from repro.core.config import ServerConfig, ServerRole
from repro.core.errors import (
    MappingNotFoundError,
    ReadOnlyCatalogError,
    ShardRoutingError,
)
from repro.core.server import RLSServer


@pytest.fixture
def live_cluster():
    """2 shards x 1 mirror, started, preloaded, mirrors synced."""
    smap = ShardMap(
        shards=("cc-s0", "cc-s1"),
        mirrors={"cc-s0": ("cc-s0-m0",), "cc-s1": ("cc-s1-m0",)},
    )
    servers = {}
    for shard in smap.shards:
        for mirror in smap.mirrors_of(shard):
            servers[mirror] = RLSServer(
                ServerConfig(
                    name=mirror,
                    role=ServerRole.LRC,
                    mirror_of=shard,
                    cluster=smap,
                    sync_latency=0.0,
                )
            ).start()
        servers[shard] = RLSServer(
            ServerConfig(
                name=shard,
                role=ServerRole.LRC,
                mirrors=smap.mirrors_of(shard),
                cluster=smap,
                sync_latency=0.0,
            )
        ).start()
    cc = CombinedClient(smap, rng=random.Random(3))
    pairs = [(f"cc-lfn{i:03d}", f"pfn://cc/{i}") for i in range(60)]
    assert cc.bulk_create(pairs) == []
    for shard in smap.shards:
        connect(shard).mirror_sync()
    yield smap, servers, cc, pairs
    cc.close()
    for server in servers.values():
        server.stop()


class TestRouting:
    def test_write_lands_on_owner_only(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        cc.create("routed-1", "pfn://r1")
        owner = cc.owner("routed-1")
        other = next(s for s in smap.shards if s != owner)
        assert servers[owner].lrc.exists("routed-1")
        assert not servers[other].lrc.exists("routed-1")

    def test_bulk_groups_by_owner_and_merges_failures(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        # pairs already exist: every one must come back as a failure
        failures = cc.bulk_create(pairs[:10])
        assert len(failures) == 10
        assert {f[0] for f in failures} == {p[0] for p in pairs[:10]}

    def test_reads_prefer_mirrors(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        lfn, pfn = pairs[0]
        assert cc.get_mappings(lfn) == [pfn]
        owner = cc.owner(lfn)
        mirror = smap.mirrors_of(owner)[0]
        served = servers[mirror].rpc.requests_served
        assert served > 0, "mirror never served a request"

    def test_scatter_gather_wildcard(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        found = cc.query_wildcard("cc-lfn*")
        assert sorted(found) == sorted(pairs)

    def test_bulk_query_merges_shards(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        names = [p[0] for p in pairs[:20]] + ["cc-missing"]
        answer = cc.bulk_query(names)
        assert len(answer) == 20
        assert "cc-missing" not in answer

    def test_counts_sum_over_shards(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        assert cc.lfn_count() == len(pairs)
        assert cc.mapping_count() == len(pairs)
        per_shard = [servers[s].lrc.lfn_count() for s in smap.shards]
        assert all(count > 0 for count in per_shard), per_shard

    def test_rls_errors_propagate_not_failover(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        with pytest.raises(MappingNotFoundError):
            cc.delete("cc-never-existed", "pfn://none")
        assert all(h["healthy"] for h in cc.health().values())


class TestFailover:
    def test_mirror_death_fails_over_to_master(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        for shard in smap.shards:
            for mirror in smap.mirrors_of(shard):
                servers[mirror].stop()
        for lfn, pfn in pairs:
            assert cc.get_mappings(lfn) == [pfn]
        health = cc.health()
        assert any(
            not health[m]["healthy"]
            for s in smap.shards
            for m in smap.mirrors_of(s)
        )
        for shard in smap.shards:
            assert health[shard]["healthy"]

    def test_all_endpoints_down_raises_shard_routing_error(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        for server in servers.values():
            server.stop()
        with pytest.raises(ShardRoutingError):
            for lfn, _ in pairs:
                cc.get_mappings(lfn)

    def test_failover_metrics_counted(self, live_cluster):
        from repro.obs.metrics import MetricsRegistry

        smap, servers, cc, pairs = live_cluster
        registry = MetricsRegistry()
        client = CombinedClient(smap, metrics=registry, rng=random.Random(5))
        for shard in smap.shards:
            for mirror in smap.mirrors_of(shard):
                servers[mirror].stop()
        for lfn, pfn in pairs[:10]:
            assert client.get_mappings(lfn) == [pfn]
        counters = registry.snapshot().counters
        failovers = sum(
            count
            for key, count in counters.items()
            if key.startswith("cluster.failovers")
        )
        assert failovers > 0
        reads = sum(
            count
            for key, count in counters.items()
            if key.startswith("cluster.routes") and "kind=read" in key
        )
        assert reads == 10
        client.close()

    def test_write_to_misconfigured_master_raises_typed_error(self):
        """A shard map pointing writes at a mirror surfaces the mirror's
        typed rejection unchanged (not a routing failure)."""
        master = RLSServer(
            ServerConfig(name="mc-master", role=ServerRole.LRC)
        ).start()
        mirror = RLSServer(
            ServerConfig(
                name="mc-mirror", role=ServerRole.LRC, mirror_of="mc-master"
            )
        ).start()
        try:
            bad_map = ShardMap(shards=("mc-mirror",))
            cc = CombinedClient(bad_map)
            with pytest.raises(ReadOnlyCatalogError):
                cc.create("w", "pfn://w")
            cc.close()
        finally:
            master.stop()
            mirror.stop()


class TestBootstrap:
    def test_combined_from_server(self, live_cluster):
        smap, servers, cc, pairs = live_cluster
        with connect(smap.shards[0]) as direct:
            booted = combined_from_server(direct)
        assert booted.shard_map() == smap
        lfn, pfn = pairs[0]
        assert booted.get_mappings(lfn) == [pfn]
        booted.close()

    def test_bootstrap_without_map_raises(self, make_server):
        server = make_server(ServerRole.LRC).start()
        with connect(server.config.name) as direct:
            with pytest.raises(ShardRoutingError):
                combined_from_server(direct)

    def test_empty_map_rejected(self):
        with pytest.raises(ShardRoutingError):
            CombinedClient(ShardMap(shards=()))


class TestMethodTables:
    def test_declared_methods_exist(self):
        for method in RO_METHODS + WRITE_METHODS:
            assert callable(getattr(CombinedClient, method)), method

    def test_tables_disjoint(self):
        assert not set(RO_METHODS) & set(WRITE_METHODS)


@pytest.fixture
def tcp_cluster():
    """2 mirror-less shards over real TCP: the pipelined scatter path."""
    smap = ShardMap(shards=("tc-s0", "tc-s1"), mirrors={})
    servers = {}
    for shard in smap.shards:
        servers[shard] = RLSServer(
            ServerConfig(
                name=shard,
                role=ServerRole.LRC,
                cluster=smap,
                sync_latency=0.0,
                tcp=True,
            )
        ).start()

    from repro.core.client import connect_tcp_server

    def connect_fn(name):
        host, port = servers[name].tcp_address
        return connect_tcp_server(host, port)

    cc = CombinedClient(smap, connect_fn=connect_fn, rng=random.Random(7))
    pairs = [(f"tc-lfn{i:03d}", f"pfn://tc/{i}") for i in range(40)]
    assert cc.bulk_create(pairs) == []
    yield smap, servers, cc, pairs
    cc.close()
    for server in servers.values():
        server.stop()


class TestPipelinedScatter:
    def test_scatter_uses_pipelined_connections(self, tcp_cluster):
        smap, servers, cc, pairs = tcp_cluster
        # The TCP connect path negotiated v2 on every shard client.
        for shard in smap.shards:
            assert cc._client(shard).rpc.pipelined
        assert cc._scatter_pipelined("lfn_count") is not None

    def test_wildcard_and_counts_match_serial_path(self, tcp_cluster):
        smap, servers, cc, pairs = tcp_cluster
        assert sorted(tuple(p) for p in cc.query_wildcard("tc-lfn*")) == sorted(
            pairs
        )
        assert cc.lfn_count() == len(pairs)
        assert cc.mapping_count() == len(pairs)
        # Ground truth straight from the shard catalogs.
        assert cc.lfn_count() == sum(
            servers[s].lrc.lfn_count() for s in smap.shards
        )

    def test_get_lfns_scatters_over_tcp(self, tcp_cluster):
        smap, servers, cc, pairs = tcp_cluster
        cc.create("shared-a", "pfn://shared")
        cc.add("shared-a", "pfn://shared2")
        assert sorted(cc.get_mappings("shared-a")) == [
            "pfn://shared",
            "pfn://shared2",
        ]

    def test_dead_shard_with_no_fallback_raises_routing_error(
        self, tcp_cluster
    ):
        smap, servers, cc, pairs = tcp_cluster
        servers["tc-s1"].stop()
        with pytest.raises(ShardRoutingError):
            cc.lfn_count()
