"""Master→mirror replication: delivery, retry, idempotence, staleness."""

from __future__ import annotations

import pytest

from repro.cluster.mirror import (
    DirectMirrorSink,
    MirrorIngest,
    MirrorManager,
)
from repro.core.lrc import LocalReplicaCatalog
from repro.core.updates import UpdatePolicy
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class FlakySink:
    """Sink that fails until told to heal; records deliveries."""

    def __init__(self, ingest: MirrorIngest):
        self.ingest = ingest
        self.fail = False
        self.full_calls = 0
        self.incremental_calls = 0

    def full_sync(self, master, pairs):
        if self.fail:
            raise ConnectionError("mirror down")
        self.full_calls += 1
        self.ingest.apply_full(master, pairs)

    def incremental(self, master, added, removed):
        if self.fail:
            raise ConnectionError("mirror down")
        self.incremental_calls += 1
        self.ingest.apply_incremental(master, added, removed)


def make_lrc(name: str) -> LocalReplicaCatalog:
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, name), name=name)
    lrc.init_schema()
    return lrc


@pytest.fixture
def pair():
    """(master manager, mirror ingest, sink, clock) wired directly."""
    master = make_lrc("master")
    mirror = make_lrc("mirror")
    clock = FakeClock()
    ingest = MirrorIngest(mirror, master="master", clock=clock)
    sink = FlakySink(ingest)
    manager = MirrorManager(
        master,
        sink_resolver=lambda name: sink,
        policy=UpdatePolicy(),
        push_interval=5.0,
        clock=clock,
        rng=lambda: 0.0,
    )
    manager.add_mirror("mirror")
    return manager, ingest, sink, clock


class TestDelivery:
    def test_first_delivery_is_full_sync(self, pair):
        manager, ingest, sink, clock = pair
        manager.lrc.create_mapping("a", "pfn://a")
        manager.tick()  # needs_full target is due immediately
        assert sink.full_calls == 1
        assert ingest.lrc.get_mappings("a") == ["pfn://a"]

    def test_incremental_after_interval(self, pair):
        manager, ingest, sink, clock = pair
        manager.send_full_sync()
        manager.lrc.create_mapping("b", "pfn://b")
        assert manager.pending_changes() == (1, 0)
        manager.tick()  # interval not yet elapsed
        assert ingest.lrc.exists("b") is False
        clock.now = 6.0
        manager.tick()
        assert ingest.lrc.get_mappings("b") == ["pfn://b"]
        assert manager.pending_changes() == (0, 0)

    def test_count_threshold_flushes_early(self, pair):
        manager, ingest, sink, clock = pair
        manager.send_full_sync()
        threshold = manager.policy.immediate_count_threshold
        for i in range(threshold):
            manager.lrc.create_mapping(f"n{i}", f"pfn://n{i}")
        manager.tick()  # due by count, not by time
        assert ingest.lrc.lfn_count() == threshold

    def test_delete_propagates(self, pair):
        manager, ingest, sink, clock = pair
        manager.lrc.create_mapping("d", "pfn://d")
        manager.send_full_sync()
        manager.lrc.delete_mapping("d", "pfn://d")
        manager.flush()
        assert ingest.lrc.exists("d") is False

    def test_no_tracking_without_mirrors(self):
        master = make_lrc("lonely")
        manager = MirrorManager(master, sink_resolver=lambda n: None)
        master.create_mapping("x", "pfn://x")
        assert manager.pending_changes() == (0, 0)

    def test_bulk_load_reaches_mirror(self, pair):
        manager, ingest, sink, clock = pair
        manager.send_full_sync()
        manager.lrc.bulk_load((f"bl{i}", f"pfn://bl{i}") for i in range(50))
        manager.flush()
        assert ingest.lrc.lfn_count() == 50


class TestRetry:
    def test_failure_backs_off_then_redelivers(self, pair):
        manager, ingest, sink, clock = pair
        manager.send_full_sync()
        sink.fail = True
        manager.lrc.create_mapping("r", "pfn://r")
        clock.now = 6.0
        manager.tick()
        state = manager.target_health()["mirror"]
        assert not state["healthy"]
        assert state["backlog"] == 1
        assert manager.stats.errors == 1

        sink.fail = False
        clock.now = 6.5  # backoff not yet expired
        before = manager.stats.retries
        manager.tick()
        assert manager.stats.retries == before  # still benched

        clock.now = 1000.0
        manager.tick()
        assert ingest.lrc.get_mappings("r") == ["pfn://r"]
        state = manager.target_health()["mirror"]
        assert state["healthy"] and state["backlog"] == 0

    def test_failed_full_sync_retries_as_full(self, pair):
        manager, ingest, sink, clock = pair
        sink.fail = True
        manager.lrc.create_mapping("f", "pfn://f")
        manager.tick()  # full sync attempt fails
        assert manager.target_health()["mirror"]["needs_full"]
        sink.fail = False
        clock.now = 1000.0
        manager.tick()
        assert sink.full_calls == 1
        assert ingest.lrc.get_mappings("f") == ["pfn://f"]

    def test_changes_during_outage_are_not_lost(self, pair):
        manager, ingest, sink, clock = pair
        manager.send_full_sync()
        sink.fail = True
        manager.lrc.create_mapping("o1", "pfn://o1")
        clock.now = 6.0
        manager.tick()
        manager.lrc.create_mapping("o2", "pfn://o2")
        clock.now = 12.0
        manager.tick()
        sink.fail = False
        clock.now = 1000.0
        manager.tick()
        assert ingest.lrc.exists("o1") and ingest.lrc.exists("o2")


class TestIdempotence:
    def test_incremental_redelivery_is_idempotent(self, pair):
        manager, ingest, sink, clock = pair
        applied = ingest.apply_incremental("master", [("x", "pfn://x")], [])
        assert applied == (1, 0)
        applied = ingest.apply_incremental("master", [("x", "pfn://x")], [])
        assert applied == (0, 0)  # replay: swallowed, not an error
        assert ingest.lrc.get_mappings("x") == ["pfn://x"]

    def test_remove_redelivery_is_idempotent(self, pair):
        manager, ingest, sink, clock = pair
        ingest.apply_incremental("master", [("y", "pfn://y")], [])
        assert ingest.apply_incremental("master", [], [("y", "pfn://y")]) == (0, 1)
        assert ingest.apply_incremental("master", [], [("y", "pfn://y")]) == (0, 0)

    def test_full_sync_converges_and_prunes(self, pair):
        manager, ingest, sink, clock = pair
        ingest.apply_incremental("master", [("stale", "pfn://stale")], [])
        ingest.apply_full("master", [("keep", "pfn://keep")])
        assert ingest.lrc.exists("keep")
        assert not ingest.lrc.exists("stale")

    def test_second_pfn_for_existing_lfn(self, pair):
        manager, ingest, sink, clock = pair
        ingest.apply_incremental("master", [("m", "pfn://1")], [])
        ingest.apply_incremental("master", [("m", "pfn://2")], [])
        assert sorted(ingest.lrc.get_mappings("m")) == ["pfn://1", "pfn://2"]


class TestStaleness:
    def test_staleness_age_tracks_last_delivery(self, pair):
        manager, ingest, sink, clock = pair
        assert ingest.staleness_age() == 0.0  # nothing delivered yet
        ingest.apply_incremental("master", [("s", "pfn://s")], [])
        clock.now = 42.0
        assert ingest.staleness_age() == pytest.approx(42.0)
        ingest.apply_full("master", [("s", "pfn://s")])
        assert ingest.staleness_age() == pytest.approx(0.0)

    def test_staleness_gauge_exported_with_shard_label(self):
        registry = MetricsRegistry()
        mirror = make_lrc("gauge-mirror")
        clock = FakeClock()
        ingest = MirrorIngest(
            mirror, master="shard-a", metrics=registry, clock=clock
        )
        ingest.apply_incremental("shard-a", [("g", "pfn://g")], [])
        clock.now = 17.0
        gauges = registry.snapshot().gauges
        assert gauges["mirror.staleness_age{shard=shard-a}"] == pytest.approx(
            17.0
        )

    def test_staleness_burn_detector_fires_on_stalled_feed(self):
        """The PR 2 staleness-burn detector consumes the mirror gauge
        unchanged: a stalled feed must produce a detection."""
        from repro.obs.analyze import analyze_store
        from repro.obs.timeseries import SeriesStore

        store = SeriesStore()
        key = "mirror.staleness_age{shard=shard-a}"
        # healthy sawtooth for 60s, then the feed stalls and age climbs
        for t in range(60):
            store.record(key, float(t), float(t % 5))
        for t in range(60, 400):
            store.record(key, float(t), float(t - 60))
        detections = analyze_store(store, staleness_slo=30.0)
        assert any(d.kind == "staleness_burn" for d in detections)
        burn = next(d for d in detections if d.kind == "staleness_burn")
        assert burn.details["series"] == key

    def test_manager_metrics_counters(self):
        registry = MetricsRegistry()
        master = make_lrc("metrics-master")
        mirror = make_lrc("metrics-mirror")
        ingest = MirrorIngest(mirror, master="metrics-master")
        manager = MirrorManager(
            master,
            sink_resolver=lambda name: DirectMirrorSink(ingest),
            metrics=registry,
        )
        manager.add_mirror("metrics-mirror")
        master.create_mapping("c", "pfn://c")
        manager.send_full_sync()
        counters = registry.snapshot().counters
        assert counters["mirror.sent{kind=full}"] == 1
        assert counters["mirror.pairs_sent"] == 1
        gauges = registry.snapshot().gauges
        assert gauges["mirror.target_healthy{target=metrics-mirror}"] == 1.0
