"""Consistent-hash ring: determinism, spread, and bounded key movement."""

from __future__ import annotations

import random
import subprocess
import sys

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, ShardMap


def lfns(n: int, prefix: str = "lfn") -> list[str]:
    return [f"{prefix}-{i:05d}" for i in range(n)]


class TestPlacement:
    def test_owner_is_a_member(self):
        ring = HashRing(["a", "b", "c"])
        for lfn in lfns(200):
            assert ring.owner(lfn) in ("a", "b", "c")

    def test_owner_stable_across_calls(self):
        ring = HashRing(["a", "b", "c"])
        names = lfns(500)
        first = [ring.owner(x) for x in names]
        assert [ring.owner(x) for x in names] == first

    def test_owner_independent_of_shard_declaration_order(self):
        names = lfns(500)
        r1 = HashRing(["a", "b", "c"])
        r2 = HashRing(["c", "a", "b"])
        assert [r1.owner(x) for x in names] == [r2.owner(x) for x in names]

    def test_owner_deterministic_across_processes(self):
        """Placement must not depend on PYTHONHASHSEED (Python ``hash``
        varies per process; hashlib does not)."""
        code = (
            "from repro.cluster.ring import HashRing;"
            "r = HashRing(['a', 'b', 'c']);"
            "print(','.join(r.owner(f'lfn-{i:05d}') for i in range(50)))"
        )
        import os
        import pathlib

        import repro

        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        outs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env=dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED=seed),
            ).stdout
            for seed in ("0", "1", "12345")
        }
        assert len(outs) == 1
        in_process = HashRing(["a", "b", "c"])
        expected = ",".join(in_process.owner(f"lfn-{i:05d}") for i in range(50))
        assert outs == {expected + "\n"}

    def test_partition_round_trips_owner(self):
        ring = HashRing(["a", "b", "c"], vnodes=32)
        names = lfns(300)
        parts = ring.partition(names)
        assert sorted(x for group in parts.values() for x in group) == names
        for shard, group in parts.items():
            for lfn in group:
                assert ring.owner(lfn) == shard

    def test_property_style_round_trip_stability(self):
        """owner() answers survive arbitrary unrelated ring queries."""
        rng = random.Random(11)
        ring = HashRing(["s0", "s1", "s2", "s3"])
        probes = {x: ring.owner(x) for x in lfns(100, "probe")}
        for _ in range(2000):
            ring.owner(f"noise-{rng.randrange(10**9)}")
        assert {x: ring.owner(x) for x in probes} == probes


class TestSpread:
    def test_even_spread_with_vnodes(self):
        """With enough virtual nodes no shard hoards the namespace."""
        ring = HashRing(["a", "b", "c", "d"], vnodes=DEFAULT_VNODES)
        counts = ring.spread(lfns(8000))
        expected = 8000 / 4
        for shard, count in counts.items():
            assert count == pytest.approx(expected, rel=0.35), (
                f"{shard} holds {count} of 8000"
            )

    def test_single_shard_owns_everything(self):
        ring = HashRing(["only"])
        assert ring.spread(lfns(100)) == {"only": 100}


class TestMovement:
    def test_join_moves_bounded_fraction(self):
        """Adding shard N+1 must move about K/(N+1) keys, not rehash all."""
        names = lfns(6000)
        ring = HashRing(["a", "b", "c"])
        before = {x: ring.owner(x) for x in names}
        grown = ring.with_shard("d")
        moved = sum(1 for x in names if grown.owner(x) != before[x])
        ideal = len(names) / 4
        assert moved <= ideal * 1.5, f"{moved} keys moved (ideal ~{ideal:.0f})"
        # every moved key lands on the new shard, never between old shards
        for x in names:
            if grown.owner(x) != before[x]:
                assert grown.owner(x) == "d"

    def test_leave_moves_only_departed_keys(self):
        names = lfns(6000)
        ring = HashRing(["a", "b", "c", "d"])
        before = {x: ring.owner(x) for x in names}
        shrunk = ring.without_shard("d")
        for x in names:
            if before[x] != "d":
                assert shrunk.owner(x) == before[x]

    def test_with_shard_returns_new_ring(self):
        ring = HashRing(["a"])
        grown = ring.with_shard("b")
        assert len(ring) == 1 and len(grown) == 2


class TestShardMap:
    def test_round_trip(self):
        smap = ShardMap(
            shards=("s0", "s1"),
            mirrors={"s0": ("s0-m0", "s0-m1")},
            vnodes=32,
            version=3,
        )
        clone = ShardMap.from_dict(smap.to_dict())
        assert clone == smap
        assert clone.ring().owner("x") == smap.ring().owner("x")

    def test_mirror_keys_must_be_shards(self):
        with pytest.raises(ValueError):
            ShardMap(shards=("s0",), mirrors={"nope": ("m",)})

    def test_all_servers(self):
        smap = ShardMap(shards=("s0", "s1"), mirrors={"s1": ("s1-m0",)})
        assert smap.all_servers() == ["s0", "s1", "s1-m0"]
        assert smap.mirrors_of("s0") == ()

    def test_with_shard_bumps_version(self):
        smap = ShardMap(shards=("s0",))
        grown = smap.with_shard("s1", mirrors=("s1-m0",))
        assert grown.version == smap.version + 1
        assert grown.mirrors_of("s1") == ("s1-m0",)
        shrunk = grown.without_shard("s1")
        assert shrunk.shards == ("s0",)
        assert shrunk.version == grown.version + 1
