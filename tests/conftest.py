"""Shared fixtures.

Engines default to zero sync latency so tests run fast; timing-sensitive
behaviour is tested explicitly with injected fake clocks/sleepers.
"""

from __future__ import annotations

import pytest

from repro.core.config import ServerConfig, ServerRole
from repro.core.server import RLSServer
from repro.db.mysql_engine import MySQLEngine
from repro.db.postgres_engine import PostgresEngine


@pytest.fixture
def mysql():
    """A MySQL-flavoured engine with flush disabled and no sync latency."""
    return MySQLEngine(flush_on_commit=False, sync_latency=0.0)


@pytest.fixture
def postgres():
    """A PostgreSQL-flavoured engine (MVCC storage, fsync off)."""
    return PostgresEngine(fsync=False, sync_latency=0.0)


_SERVER_COUNTER = [0]


@pytest.fixture
def make_server():
    """Factory for RLS servers with unique names and guaranteed cleanup."""
    servers: list[RLSServer] = []

    def factory(role: ServerRole = ServerRole.BOTH, **kwargs) -> RLSServer:
        _SERVER_COUNTER[0] += 1
        defaults = dict(
            name=f"test-server-{_SERVER_COUNTER[0]}",
            role=role,
            sync_latency=0.0,
        )
        defaults.update(kwargs)
        server = RLSServer(ServerConfig(**defaults))
        servers.append(server)
        return server

    yield factory
    for server in servers:
        server.stop()


@pytest.fixture
def server(make_server):
    """One LRC+RLI server, started."""
    return make_server(ServerRole.BOTH).start()
