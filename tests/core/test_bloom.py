"""Bloom filter tests, including hypothesis properties (paper §3.4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import (
    BloomFilter,
    BloomParameters,
    CountingBloomFilter,
    false_positive_rate,
    probe_positions,
    size_for_entries,
)


class TestParameters:
    def test_paper_sizing_10_bits_per_entry(self):
        """Paper: '10 million bits for approximately 1 million entries'."""
        assert size_for_entries(1_000_000) == 10_000_000

    def test_minimum_size(self):
        assert size_for_entries(1) >= 1024

    def test_byte_aligned(self):
        assert size_for_entries(123_457) % 8 == 0

    def test_default_three_hashes(self):
        assert BloomParameters.for_entries(1000).num_hashes == 3

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            BloomParameters(num_bits=1001)  # not multiple of 8
        with pytest.raises(ValueError):
            BloomParameters(num_bits=0)

    def test_invalid_hashes_rejected(self):
        with pytest.raises(ValueError):
            BloomParameters(num_bits=1024, num_hashes=0)


class TestProbePositions:
    def test_deterministic(self):
        assert probe_positions("lfn1", 1024, 3) == probe_positions("lfn1", 1024, 3)

    def test_k_positions(self):
        assert len(probe_positions("x", 1024, 5)) == 5

    def test_positions_in_range(self):
        for pos in probe_positions("anything", 1024, 3):
            assert 0 <= pos < 1024

    def test_different_names_differ(self):
        assert probe_positions("a", 10**6, 3) != probe_positions("b", 10**6, 3)


class TestBloomFilter:
    def test_no_false_negatives(self):
        params = BloomParameters.for_entries(1000)
        names = [f"lfn{i}" for i in range(1000)]
        bf = BloomFilter.from_names(names, params)
        assert all(n in bf for n in names)

    def test_empty_filter_contains_nothing(self):
        bf = BloomFilter(BloomParameters.for_entries(100))
        assert "anything" not in bf

    def test_false_positive_rate_near_one_percent(self):
        """Paper: ~1% FP at 10 bits/entry with 3 hashes."""
        n = 20_000
        params = BloomParameters.for_entries(n)
        bf = BloomFilter.from_names((f"in{i}" for i in range(n)), params)
        absent = [f"out{i}" for i in range(20_000)]
        fp = bf.contains_batch(absent).mean()
        assert 0.001 < fp < 0.04

    def test_add_matches_batch(self):
        params = BloomParameters.for_entries(100)
        a = BloomFilter(params)
        b = BloomFilter(params)
        names = [f"n{i}" for i in range(50)]
        for n in names:
            a.add(n)
        b.add_batch(names)
        assert np.array_equal(a.bits, b.bits)

    def test_contains_batch_matches_scalar(self):
        params = BloomParameters.for_entries(200)
        bf = BloomFilter.from_names((f"x{i}" for i in range(100)), params)
        probe = [f"x{i}" for i in range(0, 200, 7)]
        batch = bf.contains_batch(probe)
        assert list(batch) == [name in bf for name in probe]

    def test_contains_batch_empty(self):
        bf = BloomFilter(BloomParameters.for_entries(10))
        assert bf.contains_batch([]).shape == (0,)

    def test_serialization_roundtrip(self):
        params = BloomParameters.for_entries(500)
        bf = BloomFilter.from_names((f"n{i}" for i in range(500)), params)
        restored = BloomFilter.from_bytes(bf.to_bytes(), params, 500)
        assert np.array_equal(restored.bits, bf.bits)
        assert all(f"n{i}" in restored for i in range(500))

    def test_size_bytes_matches_params(self):
        params = BloomParameters(num_bits=10_000_000)
        assert BloomFilter(params).size_bytes == 1_250_000

    def test_bitmap_shape_mismatch_rejected(self):
        params = BloomParameters(num_bits=1024)
        with pytest.raises(ValueError):
            BloomFilter(params, np.zeros(1, dtype=np.uint8))

    def test_union(self):
        params = BloomParameters.for_entries(100)
        a = BloomFilter.from_names(["x"], params)
        b = BloomFilter.from_names(["y"], params)
        merged = a.union(b)
        assert "x" in merged and "y" in merged

    def test_union_requires_same_params(self):
        a = BloomFilter(BloomParameters(num_bits=1024))
        b = BloomFilter(BloomParameters(num_bits=2048))
        with pytest.raises(ValueError):
            a.union(b)

    def test_fill_ratio(self):
        params = BloomParameters(num_bits=1024)
        bf = BloomFilter(params)
        assert bf.fill_ratio() == 0.0
        bf.add("x")
        assert 0 < bf.fill_ratio() <= 3 / 1024

    def test_analytic_fp_rate(self):
        # 10 bits/entry, k=3: (1 - e^-0.3)^3 ≈ 1.74%
        assert false_positive_rate(10_000_000, 3, 1_000_000) == pytest.approx(
            0.0174, abs=0.001
        )


class TestCountingBloomFilter:
    def test_add_then_remove_restores_absence(self):
        cbf = CountingBloomFilter(BloomParameters.for_entries(100))
        cbf.add("x")
        assert "x" in cbf
        cbf.remove("x")
        assert "x" not in cbf

    def test_remove_one_of_shared_bits_keeps_other(self):
        """Counting semantics: removing one name never evicts another."""
        cbf = CountingBloomFilter(BloomParameters.for_entries(2))  # tiny, collisions
        names = [f"n{i}" for i in range(50)]
        for n in names:
            cbf.add(n)
        cbf.remove(names[0])
        for n in names[1:]:
            assert n in cbf

    def test_snapshot_matches_plain_filter(self):
        params = BloomParameters.for_entries(200)
        cbf = CountingBloomFilter(params)
        names = [f"n{i}" for i in range(150)]
        cbf.add_batch(names)
        direct = BloomFilter.from_names(names, params)
        assert np.array_equal(cbf.snapshot().bits, direct.bits)

    def test_snapshot_after_removals_matches_remaining(self):
        """The incremental-maintenance property the paper relies on:
        set/unset of bits keeps the snapshot equal to a from-scratch build."""
        params = BloomParameters.for_entries(200)
        cbf = CountingBloomFilter(params)
        names = [f"n{i}" for i in range(100)]
        cbf.add_batch(names)
        for n in names[:40]:
            cbf.remove(n)
        direct = BloomFilter.from_names(names[40:], params)
        assert np.array_equal(cbf.snapshot().bits, direct.bits)

    def test_entry_count_tracked(self):
        cbf = CountingBloomFilter(BloomParameters.for_entries(10))
        cbf.add("a")
        cbf.add("b")
        cbf.remove("a")
        assert cbf.entries == 1


@settings(max_examples=50, deadline=None)
@given(st.sets(st.text(min_size=1, max_size=20), min_size=1, max_size=60))
def test_property_no_false_negatives(names):
    params = BloomParameters.for_entries(max(len(names), 10))
    bf = BloomFilter.from_names(names, params)
    assert all(n in bf for n in names)


@settings(max_examples=50, deadline=None)
@given(
    st.sets(st.text(min_size=1, max_size=12), min_size=2, max_size=40).flatmap(
        lambda s: st.tuples(st.just(sorted(s)), st.integers(1, len(s) - 1))
    )
)
def test_property_counting_filter_incremental_equals_rebuild(data):
    """Property: add all, remove a prefix -> snapshot == rebuild of suffix."""
    names, k = data
    params = BloomParameters.for_entries(max(len(names), 10))
    cbf = CountingBloomFilter(params)
    cbf.add_batch(names)
    for n in names[:k]:
        cbf.remove(n)
    rebuilt = BloomFilter.from_names(names[k:], params)
    assert np.array_equal(cbf.snapshot().bits, rebuilt.bits)
