"""Adaptive Bloom sizing: 'based on the number of mappings in an LRC' (§3.4)."""

import pytest

from repro.core.lrc import LocalReplicaCatalog
from repro.core.updates import UpdateManager, UpdatePolicy
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection


class RecordingSink:
    def __init__(self):
        self.bloom = []

    def full_update(self, *a):
        pass

    def incremental_update(self, *a):
        pass

    def bloom_update(self, lrc, bitmap, num_bits, num_hashes, entries):
        self.bloom.append((len(bitmap), num_bits, entries))


@pytest.fixture
def setup():
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "sz"), name="sz")
    lrc.init_schema()
    sink = RecordingSink()
    manager = UpdateManager(lrc, lambda name: sink, policy=UpdatePolicy())
    lrc.add_rli("target", bloom=True)
    return lrc, manager, sink


class TestAdaptiveSizing:
    def test_small_catalog_gets_small_filter(self, setup):
        lrc, manager, sink = setup
        lrc.bulk_create([(f"s{i}", f"p{i}") for i in range(50)])
        manager.send_full_update()
        size_bytes, num_bits, entries = sink.bloom[0]
        # Floor is 1024 expected entries -> 10240 bits -> 1280 bytes.
        assert size_bytes == 1280
        assert entries == 50

    def test_filter_scales_with_catalog(self, setup):
        lrc, manager, sink = setup
        lrc.bulk_load((f"m{i}", f"p{i}") for i in range(5000))
        manager.send_full_update()
        _, num_bits, entries = sink.bloom[0]
        assert entries == 5000
        # ~10 bits/entry with 1.25x headroom.
        assert 5000 * 10 <= num_bits <= 5000 * 10 * 1.5

    def test_overflow_triggers_rebuild(self, setup):
        """Growing past the filter's capacity rebuilds it larger instead of
        silently saturating the bitmap (FP rate would explode otherwise)."""
        lrc, manager, sink = setup
        lrc.bulk_create([(f"a{i}", f"p{i}") for i in range(100)])
        manager.send_full_update()
        first_bits = sink.bloom[0][1]
        # Outgrow the 1024-entry floor capacity.
        lrc.bulk_load((f"b{i}", f"q{i}") for i in range(3000))
        manager.send_full_update()
        second_bits = sink.bloom[-1][1]
        assert second_bits > first_bits
        # And the new filter is consistent with the whole catalog.
        bloom = manager.bloom
        assert bloom is not None
        assert bloom.entries == 3100
        assert "a5" in bloom and "b2500" in bloom

    def test_no_rebuild_while_within_capacity(self, setup):
        lrc, manager, sink = setup
        lrc.bulk_create([(f"c{i}", f"p{i}") for i in range(100)])
        manager.send_full_update()
        bloom_before = manager.bloom
        lrc.create_mapping("one-more", "p")
        manager.send_full_update()
        assert manager.bloom is bloom_before  # maintained incrementally
