"""Out-of-band bulk_load fast paths must match the slow (SQL) paths."""

import pytest

from repro.core.errors import MappingNotFoundError
from repro.core.lrc import LocalReplicaCatalog
from repro.core.rli import ReplicaLocationIndex
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection


@pytest.fixture
def lrc():
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    catalog = LocalReplicaCatalog(Connection(engine, "bl"), name="bl")
    catalog.init_schema()
    return catalog


@pytest.fixture
def rli():
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    index = ReplicaLocationIndex(Connection(engine, "blr"), name="blr")
    index.init_schema()
    return index


class TestLRCBulkLoad:
    def test_equivalent_to_create(self, lrc):
        lrc.bulk_load([("a", "p1"), ("b", "p2")])
        assert lrc.get_mappings("a") == ["p1"]
        assert lrc.lfn_count() == 2 and lrc.mapping_count() == 2

    def test_replicas_and_shared_pfns(self, lrc):
        lrc.bulk_load([("a", "p1"), ("a", "p2"), ("b", "p1")])
        assert sorted(lrc.get_mappings("a")) == ["p1", "p2"]
        assert sorted(lrc.get_lfns("p1")) == ["a", "b"]
        assert lrc.mapping_count() == 3

    def test_ref_counts_allow_normal_deletes_afterwards(self, lrc):
        """The subtle contract: loaded rows must carry correct ref counts
        so the regular delete path prunes exactly when it should."""
        lrc.bulk_load([("a", "p1"), ("a", "p2"), ("b", "p1")])
        lrc.delete_mapping("a", "p1")
        assert lrc.get_mappings("a") == ["p2"]   # a survives
        assert lrc.get_lfns("p1") == ["b"]       # p1 survives (b uses it)
        lrc.delete_mapping("b", "p1")
        with pytest.raises(MappingNotFoundError):
            lrc.get_lfns("p1")                   # now pruned
        lrc.delete_mapping("a", "p2")
        assert lrc.lfn_count() == 0

    def test_listeners_notified_for_new_lfns_only(self, lrc):
        events = []
        lrc.create_mapping("pre", "p0")
        lrc.add_lfn_listener(lambda lfn, present: events.append((lfn, present)))
        lrc.bulk_load([("pre", "p-extra"), ("new1", "p1"), ("new2", "p2")])
        assert sorted(events) == [("new1", True), ("new2", True)]

    def test_mix_with_existing_rows(self, lrc):
        lrc.create_mapping("old", "p-old")
        lrc.bulk_load([("old", "p-new"), ("fresh", "p-old")])
        assert sorted(lrc.get_mappings("old")) == ["p-new", "p-old"]
        assert sorted(lrc.get_lfns("p-old")) == ["fresh", "old"]

    def test_validates_names(self, lrc):
        with pytest.raises(Exception):
            lrc.bulk_load([("", "p")])

    def test_returns_count(self, lrc):
        assert lrc.bulk_load([("a", "p"), ("b", "q")]) == 2

    def test_queries_through_sql_layer_see_loaded_rows(self, lrc):
        """bulk_load bypasses SQL but must stay visible to it (indexes!)."""
        lrc.bulk_load([(f"w{i}", f"p{i}") for i in range(20)])
        assert len(lrc.query_wildcard("w1*")) == 11  # w1, w10..w19


class TestRLIBulkLoad:
    def test_equivalent_to_full_update(self, rli):
        rli.bulk_load("lrcA", ["x", "y"])
        assert rli.query("x") == ["lrcA"]
        assert rli.mapping_count() == 2

    def test_idempotent_per_pair(self, rli):
        rli.bulk_load("lrcA", ["x"])
        rli.bulk_load("lrcA", ["x"])
        assert rli.mapping_count() == 1

    def test_multiple_lrcs(self, rli):
        rli.bulk_load("lrcA", ["x"])
        rli.bulk_load("lrcB", ["x", "y"])
        assert sorted(rli.query("x")) == ["lrcA", "lrcB"]

    def test_entries_expire_like_normal_ones(self, rli):
        rli.timeout = 0.0
        rli.bulk_load("lrcA", ["ttl"])
        assert rli.expire_once() == 1

    def test_incremental_remove_works_after_load(self, rli):
        rli.bulk_load("lrcA", ["x", "y"])
        rli.apply_incremental_update("lrcA", [], ["x"])
        with pytest.raises(MappingNotFoundError):
            rli.query("x")
        assert rli.query("y") == ["lrcA"]
