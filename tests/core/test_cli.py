"""CLI tests (against an in-process server)."""

import io
import json
import threading

import pytest

from repro.cli import main
from repro.core.config import ServerRole


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def server_name(make_server):
    server = make_server(ServerRole.BOTH)
    return server.config.name


class TestMappingCommands:
    def test_create_query_delete(self, server_name):
        code, out = run_cli("create", "--server", server_name, "lfn1", "pfn1")
        assert code == 0 and "created" in out
        code, out = run_cli("query", "--server", server_name, "lfn1")
        assert out.strip() == "pfn1"
        run_cli("add", "--server", server_name, "lfn1", "pfn2")
        _, out = run_cli("query", "--server", server_name, "lfn1")
        assert set(out.split()) == {"pfn1", "pfn2"}
        code, out = run_cli("delete", "--server", server_name, "lfn1", "pfn1")
        assert code == 0
        _, out = run_cli("query", "--server", server_name, "lfn1")
        assert out.strip() == "pfn2"

    def test_wildcard_query(self, server_name):
        run_cli("create", "--server", server_name, "run/a", "p1")
        run_cli("create", "--server", server_name, "run/b", "p2")
        _, out = run_cli("query", "--server", server_name, "run/*")
        assert "run/a\tp1" in out and "run/b\tp2" in out

    def test_reverse_query(self, server_name):
        run_cli("create", "--server", server_name, "lfnX", "shared")
        run_cli("create", "--server", server_name, "lfnY", "shared")
        _, out = run_cli("query", "--server", server_name, "--reverse", "shared")
        assert set(out.split()) == {"lfnX", "lfnY"}


class TestBulkCommands:
    def test_bulk_create_and_query(self, server_name, tmp_path):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("a p1\nb p2\nc p3\n")
        code, out = run_cli("bulk", "--server", server_name, "create", str(pairs))
        assert code == 0 and "3/3 succeeded" in out
        lfns = tmp_path / "lfns.txt"
        lfns.write_text("a\nb\nmissing\n")
        _, out = run_cli("bulk", "--server", server_name, "query", str(lfns))
        assert "a\tp1" in out and "b\tp2" in out and "missing" not in out

    def test_bulk_failures_exit_nonzero(self, server_name, tmp_path):
        pairs = tmp_path / "pairs.txt"
        pairs.write_text("dup p1\ndup p2\n")
        code, out = run_cli("bulk", "--server", server_name, "create", str(pairs))
        assert code == 1 and "FAILED dup" in out


class TestAttrCommands:
    def test_attribute_lifecycle(self, server_name):
        run_cli("create", "--server", server_name, "l", "p")
        code, _ = run_cli("attr", "--server", server_name, "define", "size", "pfn", "int")
        assert code == 0
        run_cli("attr", "--server", server_name, "add", "p", "size", "pfn", "42")
        _, out = run_cli("attr", "--server", server_name, "get", "p", "pfn")
        assert "size=42" in out
        run_cli("attr", "--server", server_name, "remove", "p", "size", "pfn")
        _, out = run_cli("attr", "--server", server_name, "get", "p", "pfn")
        assert out.strip() == ""

    def test_unknown_attr_op(self, server_name):
        code, out = run_cli("attr", "--server", server_name, "bogus")
        assert code == 2


class TestAdminCommands:
    def test_ping_and_stats(self, server_name):
        _, out = run_cli("admin", "--server", server_name, "ping")
        assert out.strip() == "pong"
        _, out = run_cli("admin", "--server", server_name, "stats")
        stats = json.loads(out)
        assert stats["roles"] == {"lrc": True, "rli": True}

    def test_rli_management_and_update(self, server_name):
        run_cli("create", "--server", server_name, "lfn1", "pfn1")
        code, _ = run_cli(
            "admin", "--server", server_name, "add-rli", server_name
        )
        assert code == 0
        _, out = run_cli("admin", "--server", server_name, "list-rlis")
        assert server_name in out and "full" in out
        code, out = run_cli("admin", "--server", server_name, "update")
        assert code == 0 and "full update" in out
        _, out = run_cli("rli-query", "--server", server_name, "lfn1")
        assert out.strip() == server_name
        run_cli("admin", "--server", server_name, "remove-rli", server_name)
        _, out = run_cli("admin", "--server", server_name, "list-rlis")
        assert out.strip() == ""

    def test_expire(self, server_name):
        _, out = run_cli("admin", "--server", server_name, "expire")
        assert "expired 0" in out


class TestServeCommand:
    def test_serve_tcp_and_talk_to_it(self):
        results = {}

        def serve():
            out = io.StringIO()
            main(
                [
                    "serve", "--name", "cli-served", "--tcp",
                    "--run-seconds", "2.0",
                ],
                out=out,
            )
            results["out"] = out.getvalue()

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            import time

            deadline = time.time() + 3.0
            port = None
            while time.time() < deadline and port is None:
                try:
                    code, _ = run_cli(
                        "create", "--server", "cli-served", "x", "p"
                    )
                    port = True
                except Exception:
                    time.sleep(0.05)
            assert port, "server never came up"
            _, out = run_cli("query", "--server", "cli-served", "x")
            assert out.strip() == "p"
        finally:
            thread.join()
        assert "serving cli-served on 127.0.0.1:" in results["out"]
