"""Observability CLI surfaces: stats --watch, trace, top, admin_traces."""

from __future__ import annotations

import io
import json
import re
import threading

import pytest

from repro.cli import main
from repro.core.client import connect
from repro.core.config import ServerRole
from repro.obs import tracing
from repro.obs.collector import ClusterCollector, client_source
from repro.obs.tracing import SpanSink, Tracer, install_tracer


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def server_name(make_server):
    return make_server(ServerRole.BOTH).config.name


@pytest.fixture
def traced():
    """Process-wide tracer whose sink retains every span (threshold 0)."""
    sink = SpanSink(latency_threshold=0.0)
    install_tracer(Tracer(sink=sink))
    yield sink
    install_tracer(None)


@pytest.fixture
def traffic():
    """Background client loops generating load while a CLI command runs."""
    stop = threading.Event()
    threads: list[threading.Thread] = []

    def start(server_name: str, op: str = "create") -> None:
        def loop() -> None:
            client = connect(server_name)
            i = 0
            try:
                while not stop.is_set():
                    if op == "create":
                        client.create(f"load-{server_name}-{i}", f"pfn-{i}")
                    else:
                        client.ping()
                    i += 1
            finally:
                client.close()

        thread = threading.Thread(target=loop, daemon=True)
        threads.append(thread)
        thread.start()

    yield start
    stop.set()
    for thread in threads:
        thread.join(timeout=10)


class TestStatsWatch:
    def test_prints_per_interval_rates(self, server_name, traffic):
        traffic(server_name)
        code, out = run_cli(
            "stats", server_name, "--watch", "0.2", "--iterations", "2"
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l.startswith("[")]
        assert len(lines) == 2
        for line in lines:
            assert "ops/s=" in line and "errors/s=" in line
        # Load ran throughout, so the rate is positive and the busiest
        # method breakdown appears.
        rate = float(re.search(r"ops/s=([0-9.]+)", lines[-1]).group(1))
        assert rate > 0
        assert "top:" in lines[-1]


class TestTrace:
    def test_without_tracer_fails_with_hint(self, server_name):
        code, out = run_cli("trace", "--server", server_name)
        assert code == 1
        assert "rls serve --trace" in out

    def test_lists_retained_spans(self, server_name, traced):
        run_cli("create", "--server", server_name, "t-lfn", "t-pfn")
        run_cli("query", "--server", server_name, "t-lfn")
        code, out = run_cli("trace", "--server", server_name)
        assert code == 0
        assert out.startswith("span sink:")
        body = out.splitlines()[1:]
        assert body, out
        assert any("rpc.handle" in line for line in body)
        assert all("ms" in line for line in body)

    def test_json_payload(self, server_name, traced):
        run_cli("create", "--server", server_name, "j-lfn", "j-pfn")
        code, out = run_cli(
            "trace", "--server", server_name, "--json", "--limit", "3"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["enabled"] is True
        assert 0 < len(payload["spans"]) <= 3
        assert payload["stats"]["retained"] > 0

    def test_handler_failures_are_tail_retained(self, server_name, make_server):
        """The dispatcher converts handler exceptions into error replies,
        so it must mark the span failed itself — otherwise error spans
        would never reach the sink's interesting buffer."""
        sink = SpanSink()  # default 50ms threshold: only errors retain
        install_tracer(Tracer(sink=sink))
        try:
            code, _ = run_cli("query", "--server", server_name, "absent-lfn")
        except Exception:
            pass
        finally:
            install_tracer(None)
        errors = [s for s in sink.interesting() if s.error]
        assert errors, "failed RPC left no retained error span"
        assert any(s.name == "rpc.handle" for s in errors)
        assert errors[0].error == "MappingNotFoundError"

    def test_traces_rpc_respects_limit(self, server_name, traced):
        client = connect(server_name)
        try:
            for i in range(5):
                client.create(f"rpc-{i}", "p")
            payload = client.traces(limit=2)
        finally:
            client.close()
        assert payload["enabled"] is True
        assert len(payload["spans"]) == 2


class TestServeTrace:
    def test_installs_and_uninstalls_tracer(self):
        assert not tracing.active()
        code, out = run_cli(
            "serve", "--name", "serve-trace-cli", "--run-seconds", "0.01",
            "--trace",
        )
        assert code == 0
        assert "tracing enabled" in out
        # The serve path must not leak the process-wide tracer.
        assert not tracing.active()


class TestTop:
    def test_cluster_sample_rates_sum_exactly(self, make_server):
        """Per-node rates and the cluster rate come from the same round
        and add up exactly (the aggregate-consistency invariant)."""
        lrc1 = make_server(ServerRole.LRC)
        lrc2 = make_server(ServerRole.LRC)
        rli = make_server(ServerRole.RLI)
        servers = [lrc1, lrc2, rli]
        clients = [connect(s.config.name) for s in servers]
        try:
            collector = ClusterCollector(
                [
                    client_source(s.config.name, c)
                    for s, c in zip(servers, clients)
                ]
            )
            collector.scrape_once(now=0.0)
            for i in range(6):
                clients[0].create(f"a{i}", "p")
            for i in range(4):
                clients[1].create(f"b{i}", "p")
            for _ in range(2):
                clients[2].ping()
            sample = collector.scrape_once(now=2.0)
            assert sample.nodes_up == 3
            rates = {n: s.ops_rate for n, s in sample.nodes.items()}
            assert sample.cluster_ops_rate == sum(rates.values())
            assert (
                collector.store.latest("cluster.ops_rate")
                == sample.cluster_ops_rate
            )
            for name, rate in rates.items():
                key = f"node.ops_rate{{node={name}}}"
                assert collector.store.latest(key) == rate
            # Each node also served one admin_metrics call (the priming
            # scrape), which cancels in pairwise differences.
            assert rates[lrc1.config.name] - rates[lrc2.config.name] == 1.0
            assert rates[lrc2.config.name] - rates[rli.config.name] == 1.0
        finally:
            for client in clients:
                client.close()

    def test_top_cli_two_lrcs_one_rli(self, make_server, traffic):
        """Acceptance: ``rls top`` against 2 LRCs + 1 RLI shows per-node
        and cluster rates that sum consistently within one interval."""
        lrc1 = make_server(ServerRole.LRC)
        lrc2 = make_server(ServerRole.LRC)
        rli = make_server(ServerRole.RLI)
        specs = [lrc1.config.name, lrc2.config.name, rli.config.name]
        traffic(lrc1.config.name)
        traffic(lrc2.config.name)
        traffic(rli.config.name, op="ping")

        code, out = run_cli(
            "top", "--servers", ",".join(specs),
            "--interval", "0.2", "--iterations", "2",
        )
        assert code == 0
        lines = out.splitlines()
        round_indexes = [
            i for i, l in enumerate(lines) if l.startswith("round ")
        ]
        assert len(round_indexes) == 2
        for i in round_indexes:
            assert "nodes up 3/3" in lines[i]
            cluster = float(
                re.search(r"cluster ops/s=([0-9.]+)", lines[i]).group(1)
            )
            node_rates = []
            for offset, spec in enumerate(specs, start=1):
                line = lines[i + offset]
                assert spec in line and "DOWN" not in line
                node_rates.append(
                    float(re.search(r"ops/s=\s*([0-9.]+)", line).group(1))
                )
            # All four numbers print rounded to one decimal place, so the
            # sum can drift by at most 0.05 per figure.
            assert abs(cluster - sum(node_rates)) <= 0.21, out
            assert cluster > 0

    def test_empty_server_list_is_usage_error(self):
        code, out = run_cli("top", "--servers", ",", "--iterations", "1")
        assert code == 2
        assert "no servers" in out


class TestUsageCLI:
    def drive(self, name, principal, n=3):
        client = connect(name, principal=principal)
        try:
            for i in range(n):
                client.create(f"/{principal}/data/f{i}", f"pfn-{principal}-{i}")
        finally:
            client.close()

    def test_usage_table(self, server_name):
        self.drive(server_name, "cms-prod", n=5)
        self.drive(server_name, "atlas", n=1)
        code, output = run_cli("usage", server_name)
        assert code == 0
        assert "usage accounting:" in output
        assert "cms-prod" in output and "atlas" in output
        assert "top principals:" in output
        assert "hot prefixes:" in output
        assert "/cms-prod/data" in output

    def test_usage_json(self, server_name):
        self.drive(server_name, "cms-prod")
        code, output = run_cli("usage", server_name, "--json")
        assert code == 0
        payload = json.loads(output)
        assert payload["enabled"] is True
        assert "cms-prod" in payload["principals"]

    def test_usage_disabled_fails_with_hint(self, make_server):
        server = make_server(ServerRole.BOTH, usage_accounting=False)
        code, output = run_cli("usage", server.config.name)
        assert code == 1
        assert "usage accounting" in output

    def test_top_principals_and_prefixes(self, make_server):
        a = make_server(ServerRole.BOTH)
        b = make_server(ServerRole.BOTH)
        self.drive(a.config.name, "cms-prod", n=4)
        self.drive(b.config.name, "cms-prod", n=3)
        self.drive(b.config.name, "ligo", n=1)
        code, output = run_cli(
            "top",
            "--servers",
            f"{a.config.name},{b.config.name}",
            "--iterations",
            "1",
            "--principals",
            "--prefixes",
        )
        assert code == 0
        # Merged across both servers: 7 cms-prod creates rank first.
        assert "top principals:" in output
        assert re.search(r"top principals:.*cms-prod=7", output)
        assert "/cms-prod/data" in output
