"""ServerConfig parsing and full-stack security integration."""

import pytest

from repro.core.client import connect
from repro.core.config import Backend, ServerConfig, ServerRole
from repro.core.server import RLSServer
from repro.net.errors import AuthenticationError, RemoteError
from repro.security.acl import AccessControlList
from repro.security.authorizer import SecurityPolicy
from repro.security.credentials import CertificateAuthority
from repro.security.gridmap import Gridmap


class TestServerConfig:
    def test_defaults(self):
        config = ServerConfig()
        assert config.is_lrc and config.is_rli
        assert config.backend is Backend.MYSQL
        assert not config.flush_on_commit  # the paper's recommendation

    def test_backend_string_parsed(self):
        assert ServerConfig(backend="postgresql").backend is Backend.POSTGRESQL

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            ServerConfig(backend="oracle")

    def test_role_flags(self):
        assert not ServerConfig(role=ServerRole.LRC).is_rli
        assert not ServerConfig(role=ServerRole.RLI).is_lrc

    def test_postgres_backend_server(self):
        server = RLSServer(
            ServerConfig(
                name="pg-backed", role=ServerRole.LRC,
                backend="postgresql", sync_latency=0.0,
            )
        )
        try:
            assert server.engine.flavor == "postgresql"
            server.lrc.create_mapping("x", "p")
            assert server.lrc.get_mappings("x") == ["p"]
        finally:
            server.stop()


DN_WRITER = "/DC=org/DC=rls/CN=writer"
DN_READER = "/DC=org/DC=rls/CN=reader"


@pytest.fixture
def secure_server():
    ca = CertificateAuthority()
    gridmap = Gridmap({DN_WRITER: "writer", DN_READER: "reader"})
    acl = AccessControlList()
    acl.add(r"/DC=org/DC=rls/CN=writer", ["lrc_read", "lrc_write", "admin"])
    acl.add(r"/DC=org/DC=rls/CN=reader", ["lrc_read"])
    policy = SecurityPolicy(enabled=True, ca=ca, gridmap=gridmap, acl=acl)
    server = RLSServer(
        ServerConfig(
            name="secure-server",
            role=ServerRole.BOTH,
            security=policy,
            sync_latency=0.0,
        )
    ).start()
    yield server, ca
    server.stop()


class TestSecureServer:
    def test_writer_can_write_and_read(self, secure_server):
        _, ca = secure_server
        cred = ca.issue(DN_WRITER).to_bytes()
        client = connect("secure-server", credential=cred)
        client.create("sec-lfn", "sec-pfn")
        assert client.get_mappings("sec-lfn") == ["sec-pfn"]
        client.close()

    def test_reader_cannot_write(self, secure_server):
        _, ca = secure_server
        writer = connect("secure-server", credential=ca.issue(DN_WRITER).to_bytes())
        writer.create("ro-lfn", "ro-pfn")
        reader = connect("secure-server", credential=ca.issue(DN_READER).to_bytes())
        assert reader.get_mappings("ro-lfn") == ["ro-pfn"]
        with pytest.raises(RemoteError, match="lacks privilege"):
            reader.create("nope", "nope")
        writer.close()
        reader.close()

    def test_no_credential_rejected_at_handshake(self, secure_server):
        with pytest.raises(AuthenticationError):
            connect("secure-server")

    def test_forged_credential_rejected(self, secure_server):
        evil_ca = CertificateAuthority("Evil CA")
        cred = evil_ca.issue(DN_WRITER).to_bytes()
        with pytest.raises(AuthenticationError):
            connect("secure-server", credential=cred)

    def test_unknown_dn_has_no_privileges(self, secure_server):
        _, ca = secure_server
        cred = ca.issue("/DC=org/DC=rls/CN=stranger").to_bytes()
        client = connect("secure-server", credential=cred)
        with pytest.raises(RemoteError, match="lacks privilege"):
            client.get_mappings("x")
        client.close()

    def test_open_mode_allows_anonymous(self, make_server):
        """Paper: the server 'can also be run without any authentication'."""
        server = make_server(ServerRole.BOTH)
        client = connect(server.config.name)
        client.create("open-lfn", "open-pfn")
        client.close()
