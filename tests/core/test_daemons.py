"""Background daemon tests: expire thread and update scheduler thread."""

import time

import pytest

from repro.core.client import connect
from repro.core.config import ServerRole
from repro.core.errors import MappingNotFoundError
from repro.core.rli import ExpireThread, ReplicaLocationIndex
from repro.core.updates import UpdatePolicy, UpdateThread
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection


def wait_until(predicate, timeout=5.0, interval=0.02) -> bool:
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestExpireThread:
    def make_rli(self, timeout):
        engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        rli = ReplicaLocationIndex(
            Connection(engine, "d"), name="daemon-rli", timeout=timeout
        )
        rli.init_schema()
        return rli

    def test_expires_in_background(self):
        rli = self.make_rli(timeout=0.1)
        rli.apply_full_update("lrcA", ["ephemeral"])
        thread = ExpireThread(rli, interval=0.05)
        thread.start()
        try:
            assert wait_until(lambda: rli.mapping_count() == 0)
        finally:
            thread.stop()

    def test_stop_is_idempotent_and_joins(self):
        rli = self.make_rli(timeout=100.0)
        thread = ExpireThread(rli, interval=0.05)
        thread.start()
        thread.stop()
        thread.stop()  # no raise

    def test_start_twice_is_noop(self):
        rli = self.make_rli(timeout=100.0)
        thread = ExpireThread(rli, interval=10.0)
        thread.start()
        first = thread._thread
        thread.start()
        assert thread._thread is first
        thread.stop()


class TestUpdateThreadIntegration:
    def test_immediate_mode_propagates_in_background(self, make_server):
        """A started BOTH server pushes recent changes to its RLI without
        any explicit trigger — the paper's immediate mode end to end."""
        server = make_server(
            ServerRole.BOTH,
            updates=UpdatePolicy(
                immediate_interval=0.05,
                immediate_count_threshold=10_000,
                full_interval=3600.0,
                bloom_expected_entries=1024,
            ),
        )
        server.config.update_poll_interval = 0.02
        server.start()
        assert server._update_thread is not None
        client = connect(server.config.name)
        client.add_rli(server.config.name)
        client.create("bg-lfn", "bg-pfn")

        def indexed():
            try:
                return client.rli_query("bg-lfn") == [server.config.name]
            except MappingNotFoundError:
                return False

        assert wait_until(indexed), "update thread never propagated the change"
        client.close()

    def test_periodic_full_update_refreshes_expiring_state(self, make_server):
        """Full updates on full_interval keep soft state alive even though
        the RLI keeps expiring it (the soft-state contract, §3.2)."""
        server = make_server(
            ServerRole.BOTH,
            rli_timeout=0.4,
            expire_interval=0.1,
            updates=UpdatePolicy(
                immediate_mode=False,
                full_interval=0.15,
                bloom_expected_entries=1024,
            ),
        )
        server.config.update_poll_interval = 0.02
        server.start()
        client = connect(server.config.name)
        client.add_rli(server.config.name)
        client.create("steady-lfn", "p")
        client.trigger_full_update()
        # Observe over ~1 second (several expire+refresh cycles).
        ok_checks = 0
        for _ in range(10):
            time.sleep(0.1)
            try:
                if client.rli_query("steady-lfn"):
                    ok_checks += 1
            except MappingNotFoundError:
                pass
        assert ok_checks >= 8, "soft state did not stay refreshed"
        client.close()

    def test_update_thread_survives_sink_errors(self):
        """A failing RLI target must not kill the scheduler thread."""
        engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        from repro.core.lrc import LocalReplicaCatalog
        from repro.core.updates import UpdateManager

        lrc = LocalReplicaCatalog(Connection(engine, "x"), name="x")
        lrc.init_schema()
        lrc.add_rli("unreachable-rli")

        def resolver(name):
            raise ConnectionError("target down")

        manager = UpdateManager(
            lrc,
            resolver,
            policy=UpdatePolicy(immediate_interval=0.01,
                                bloom_expected_entries=1024),
        )
        thread = UpdateThread(manager, poll_interval=0.01)
        thread.start()
        try:
            lrc.create_mapping("a", "p")
            time.sleep(0.1)
            # Thread alive and still ticking despite resolver failures.
            assert thread._thread.is_alive()
        finally:
            thread.stop()
