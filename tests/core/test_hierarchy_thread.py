"""HierarchyThread lifecycle tests (forward_once is covered elsewhere)."""

import time

from repro.core.config import ServerRole
from repro.core.hierarchy import HierarchicalUpdater, HierarchyThread
from repro.core.membership import resolve_sink


class TestHierarchyThread:
    def test_periodic_forwarding_keeps_parent_fresh(self, make_server):
        parent = make_server(ServerRole.RLI, rli_timeout=0.3)
        child = make_server(ServerRole.RLI)
        child.rli.apply_full_update("leaf", ["fresh-lfn"])
        updater = HierarchicalUpdater(
            child.rli, resolve_sink, parents=[parent.config.name]
        )
        thread = HierarchyThread(updater, interval=0.05)
        thread.start()
        try:
            ok = 0
            for _ in range(8):
                time.sleep(0.1)
                parent.rli.expire_once()
                try:
                    if parent.rli.query("fresh-lfn"):
                        ok += 1
                except Exception:
                    pass
            assert ok >= 6  # refreshed faster than it expires
            assert updater.stats.forward_passes >= 5
        finally:
            thread.stop()

    def test_start_stop_idempotent(self, make_server):
        child = make_server(ServerRole.RLI)
        updater = HierarchicalUpdater(child.rli, resolve_sink, parents=[])
        thread = HierarchyThread(updater, interval=10.0)
        thread.start()
        first = thread._thread
        thread.start()
        assert thread._thread is first
        thread.stop()
        thread.stop()
