"""Integrity-checker tests: healthy catalogs pass, corruption is found."""

import pytest

from repro.core.config import ServerRole
from repro.core.client import connect
from repro.core.lrc import LocalReplicaCatalog
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import INT, VARCHAR


@pytest.fixture
def lrc():
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    catalog = LocalReplicaCatalog(Connection(engine, "vi"), name="vi")
    catalog.init_schema()
    return catalog


class TestTableCheckIntegrity:
    def make(self):
        schema = TableSchema(
            "t",
            [Column("id", INT, nullable=False, autoincrement=True),
             Column("name", VARCHAR(50), nullable=False)],
            primary_key=("id",),
            unique=[("name",)],
        )
        return Table(schema)

    def test_healthy_table(self):
        t = self.make()
        for i in range(10):
            t.insert({"name": f"n{i}"})
        assert t.check_integrity() == []

    def test_detects_missing_index_entry(self):
        t = self.make()
        rid, row = t.insert({"name": "a"})
        # Corrupt: remove the index entry behind the table's back.
        idx = t.find_hash_index(("name",))
        idx.remove(("a",), rid)
        problems = t.check_integrity()
        assert any("missing from index" in p for p in problems)

    def test_detects_dangling_index_entry(self):
        t = self.make()
        rid, row = t.insert({"name": "a"})
        idx = t.find_hash_index(("name",))
        idx.insert(("ghost",), 999_999)
        problems = t.check_integrity()
        assert any("ghost" in p for p in problems)

    def test_healthy_after_churn_and_vacuum(self):
        t = Table(
            TableSchema(
                "t",
                [Column("id", INT, nullable=False, autoincrement=True),
                 Column("name", VARCHAR(50), nullable=False)],
                primary_key=("id",),
                unique=[("name",)],
            ),
            eager_index_cleanup=False,
        )
        for round_no in range(5):
            rid, _ = t.insert({"name": "hot"})
            t.delete_rid(rid)
        assert t.check_integrity() == []
        t.vacuum()
        assert t.check_integrity() == []


class TestCatalogVerify:
    def test_healthy_catalog(self, lrc):
        lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(10)])
        lrc.add_mapping("l0", "p-extra")
        lrc.define_attribute("size", "pfn", "int")
        lrc.add_attribute("p0", "size", "pfn", 1)
        assert lrc.verify_integrity() == []

    def test_healthy_after_bulk_load(self, lrc):
        lrc.bulk_load([("a", "p1"), ("a", "p2"), ("b", "p1")])
        assert lrc.verify_integrity() == []

    def test_healthy_after_churn(self, lrc):
        pairs = [(f"c{i}", f"p{i}") for i in range(20)]
        lrc.bulk_create(pairs)
        lrc.bulk_delete(pairs[:10])
        assert lrc.verify_integrity() == []

    def test_detects_bad_ref_count(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.conn.execute("UPDATE t_lfn SET ref = ? WHERE name = ?", [99, "l"])
        problems = lrc.verify_integrity()
        assert any("ref=99" in p for p in problems)

    def test_detects_orphaned_name(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.conn.execute("DELETE FROM t_map")
        problems = lrc.verify_integrity()
        assert any("orphaned" in p for p in problems)

    def test_detects_dangling_map_row(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.conn.execute("DELETE FROM t_lfn")
        problems = lrc.verify_integrity()
        assert any("missing lfn id" in p for p in problems)

    def test_detects_dangling_attribute(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        lrc.add_attribute("p", "size", "pfn", 1)
        lrc.conn.execute("DELETE FROM t_attribute")
        problems = lrc.verify_integrity()
        assert any("missing attribute definition" in p for p in problems)


class TestVerifyOverRPC:
    def test_client_verify(self, make_server):
        server = make_server(ServerRole.LRC)
        client = connect(server.config.name)
        client.bulk_create([("a", "p1"), ("b", "p2")])
        assert client.verify() == []
        client.close()

    def test_cli_verify(self, make_server):
        import io

        from repro.cli import main

        server = make_server(ServerRole.LRC)
        out = io.StringIO()
        code = main(
            ["admin", "--server", server.config.name, "verify"], out=out
        )
        assert code == 0 and "catalog healthy" in out.getvalue()
