"""LocalReplicaCatalog tests: mappings, attributes, RLI targets, listeners."""

import pytest

from repro.core.errors import (
    AttributeExistsError,
    AttributeNotFoundError,
    InvalidAttributeError,
    InvalidNameError,
    MappingExistsError,
    MappingNotFoundError,
    UpdateTargetError,
)
from repro.core.lrc import AttrType, LocalReplicaCatalog, ObjType
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.db.postgres_engine import PostgresEngine


@pytest.fixture(params=["mysql", "postgresql"])
def lrc(request):
    """The LRC must behave identically on both back ends (paper §5.2)."""
    if request.param == "mysql":
        engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    else:
        engine = PostgresEngine(fsync=False, sync_latency=0.0)
    catalog = LocalReplicaCatalog(Connection(engine, "test"), name="lrc-test")
    catalog.init_schema()
    return catalog


class TestMappings:
    def test_create_and_query(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        assert lrc.get_mappings("lfn1") == ["pfn1"]

    def test_create_duplicate_lfn_rejected(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        with pytest.raises(MappingExistsError):
            lrc.create_mapping("lfn1", "pfn2")

    def test_add_second_replica(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.add_mapping("lfn1", "pfn2")
        assert sorted(lrc.get_mappings("lfn1")) == ["pfn1", "pfn2"]

    def test_add_to_missing_lfn_rejected(self, lrc):
        with pytest.raises(MappingNotFoundError):
            lrc.add_mapping("ghost", "pfn1")

    def test_add_duplicate_mapping_rejected(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        with pytest.raises(MappingExistsError):
            lrc.add_mapping("lfn1", "pfn1")

    def test_shared_pfn_across_lfns(self, lrc):
        lrc.create_mapping("lfn1", "shared-pfn")
        lrc.create_mapping("lfn2", "shared-pfn")
        assert sorted(lrc.get_lfns("shared-pfn")) == ["lfn1", "lfn2"]

    def test_query_missing_lfn_raises(self, lrc):
        with pytest.raises(MappingNotFoundError):
            lrc.get_mappings("ghost")

    def test_query_missing_pfn_raises(self, lrc):
        with pytest.raises(MappingNotFoundError):
            lrc.get_lfns("ghost")

    def test_invalid_names_rejected(self, lrc):
        with pytest.raises(InvalidNameError):
            lrc.create_mapping("", "pfn")
        with pytest.raises(InvalidNameError):
            lrc.create_mapping("lfn", "x" * 251)

    def test_counts(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.add_mapping("lfn1", "pfn2")
        lrc.create_mapping("lfn2", "pfn3")
        assert lrc.lfn_count() == 2
        assert lrc.mapping_count() == 3


class TestDelete:
    def test_delete_one_of_two_replicas(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.add_mapping("lfn1", "pfn2")
        lrc.delete_mapping("lfn1", "pfn1")
        assert lrc.get_mappings("lfn1") == ["pfn2"]

    def test_delete_last_mapping_removes_lfn(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.delete_mapping("lfn1", "pfn1")
        assert not lrc.exists("lfn1")
        assert lrc.lfn_count() == 0

    def test_orphaned_pfn_pruned(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.delete_mapping("lfn1", "pfn1")
        with pytest.raises(MappingNotFoundError):
            lrc.get_lfns("pfn1")

    def test_shared_pfn_survives_partial_delete(self, lrc):
        lrc.create_mapping("lfn1", "shared")
        lrc.create_mapping("lfn2", "shared")
        lrc.delete_mapping("lfn1", "shared")
        assert lrc.get_lfns("shared") == ["lfn2"]

    def test_delete_missing_raises(self, lrc):
        with pytest.raises(MappingNotFoundError):
            lrc.delete_mapping("nope", "pfn")

    def test_delete_existing_names_but_no_mapping(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.create_mapping("lfn2", "pfn2")
        with pytest.raises(MappingNotFoundError):
            lrc.delete_mapping("lfn1", "pfn2")

    def test_recreate_after_delete(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.delete_mapping("lfn1", "pfn1")
        lrc.create_mapping("lfn1", "pfn1")
        assert lrc.get_mappings("lfn1") == ["pfn1"]


class TestWildcardAndBulk:
    def test_wildcard_query(self, lrc):
        for i in range(5):
            lrc.create_mapping(f"run1/file{i}", f"pfn{i}")
        lrc.create_mapping("run2/file0", "other")
        hits = lrc.query_wildcard("run1/*")
        assert len(hits) == 5

    def test_wildcard_question_mark(self, lrc):
        lrc.create_mapping("f1", "p1")
        lrc.create_mapping("f2", "p2")
        lrc.create_mapping("f10", "p3")
        assert len(lrc.query_wildcard("f?")) == 2

    def test_bulk_create_reports_failures(self, lrc):
        lrc.create_mapping("dup", "pfn")
        failures = lrc.bulk_create([("a", "p1"), ("dup", "p2"), ("b", "p3")])
        assert len(failures) == 1
        assert failures[0][0] == "dup"
        assert lrc.exists("a") and lrc.exists("b")

    def test_bulk_delete(self, lrc):
        lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(5)])
        failures = lrc.bulk_delete([(f"l{i}", f"p{i}") for i in range(5)])
        assert failures == [] and lrc.lfn_count() == 0

    def test_bulk_query_omits_missing(self, lrc):
        lrc.create_mapping("here", "pfn")
        result = lrc.bulk_query(["here", "missing"])
        assert result == {"here": ["pfn"]}

    def test_all_lfns(self, lrc):
        lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(3)])
        assert sorted(lrc.all_lfns()) == ["l0", "l1", "l2"]


class TestAttributes:
    def test_define_add_get(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.define_attribute("size", ObjType.PFN, AttrType.INT)
        lrc.add_attribute("pfn1", "size", ObjType.PFN, 1024)
        assert lrc.get_attributes("pfn1", ObjType.PFN) == {"size": 1024}

    def test_all_four_types(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.define_attribute("s", "pfn", "str")
        lrc.define_attribute("i", "pfn", "int")
        lrc.define_attribute("f", "pfn", "float")
        lrc.define_attribute("d", "pfn", "date")
        lrc.add_attribute("pfn1", "s", "pfn", "text")
        lrc.add_attribute("pfn1", "i", "pfn", 5)
        lrc.add_attribute("pfn1", "f", "pfn", 2.5)
        lrc.add_attribute("pfn1", "d", "pfn", "2004-06-07")
        attrs = lrc.get_attributes("pfn1", "pfn")
        assert attrs["s"] == "text" and attrs["i"] == 5 and attrs["f"] == 2.5
        assert attrs["d"] > 0

    def test_lfn_attributes_separate_namespace(self, lrc):
        lrc.create_mapping("obj", "obj")  # same string as LFN and PFN
        lrc.define_attribute("tag", ObjType.LFN, AttrType.STR)
        lrc.define_attribute("tag", ObjType.PFN, AttrType.STR)  # no clash
        lrc.add_attribute("obj", "tag", ObjType.LFN, "logical")
        lrc.add_attribute("obj", "tag", ObjType.PFN, "physical")
        assert lrc.get_attributes("obj", ObjType.LFN) == {"tag": "logical"}
        assert lrc.get_attributes("obj", ObjType.PFN) == {"tag": "physical"}

    def test_duplicate_definition_rejected(self, lrc):
        lrc.define_attribute("size", "pfn", "int")
        with pytest.raises(AttributeExistsError):
            lrc.define_attribute("size", "pfn", "int")

    def test_duplicate_value_rejected(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        lrc.add_attribute("p", "size", "pfn", 1)
        with pytest.raises(AttributeExistsError):
            lrc.add_attribute("p", "size", "pfn", 2)

    def test_modify(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        lrc.add_attribute("p", "size", "pfn", 1)
        lrc.modify_attribute("p", "size", "pfn", 2)
        assert lrc.get_attributes("p", "pfn")["size"] == 2

    def test_modify_unset_raises(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        with pytest.raises(AttributeNotFoundError):
            lrc.modify_attribute("p", "size", "pfn", 2)

    def test_remove(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        lrc.add_attribute("p", "size", "pfn", 1)
        lrc.remove_attribute("p", "size", "pfn")
        assert lrc.get_attributes("p", "pfn") == {}

    def test_undefine_drops_values(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        lrc.add_attribute("p", "size", "pfn", 1)
        lrc.undefine_attribute("size", "pfn")
        with pytest.raises(AttributeNotFoundError):
            lrc.add_attribute("p", "size", "pfn", 1)

    def test_query_by_attribute_value(self, lrc):
        lrc.define_attribute("size", "pfn", "int")
        for i in range(5):
            lrc.create_mapping(f"l{i}", f"p{i}")
            lrc.add_attribute(f"p{i}", "size", "pfn", i * 100)
        hits = lrc.query_by_attribute("size", "pfn", 200, ">")
        assert sorted(name for name, _ in hits) == ["p3", "p4"]

    def test_query_by_attribute_name_only(self, lrc):
        lrc.define_attribute("size", "pfn", "int")
        lrc.create_mapping("l", "p")
        lrc.add_attribute("p", "size", "pfn", 7)
        assert lrc.query_by_attribute("size", "pfn") == [("p", 7)]

    def test_bad_comparison_op(self, lrc):
        lrc.define_attribute("size", "pfn", "int")
        with pytest.raises(InvalidAttributeError):
            lrc.query_by_attribute("size", "pfn", 1, "LIKE")

    def test_bad_value_type(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        with pytest.raises(InvalidAttributeError):
            lrc.add_attribute("p", "size", "pfn", "not-a-number")

    def test_attribute_on_missing_object(self, lrc):
        lrc.define_attribute("size", "pfn", "int")
        with pytest.raises(MappingNotFoundError):
            lrc.add_attribute("ghost", "size", "pfn", 1)

    def test_attributes_pruned_with_object(self, lrc):
        lrc.create_mapping("l", "p")
        lrc.define_attribute("size", "pfn", "int")
        lrc.add_attribute("p", "size", "pfn", 1)
        lrc.delete_mapping("l", "p")
        lrc.create_mapping("l2", "p")
        assert lrc.get_attributes("p", "pfn") == {}

    def test_bulk_add_attribute(self, lrc):
        lrc.define_attribute("size", "pfn", "int")
        lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(3)])
        failures = lrc.bulk_add_attribute(
            [("p0", "size", 1), ("p1", "size", 2), ("ghost", "size", 3)], "pfn"
        )
        assert len(failures) == 1 and failures[0][0] == "ghost"


class TestRLITargets:
    def test_add_and_list(self, lrc):
        lrc.add_rli("rli1", bloom=True)
        lrc.add_rli("rli2", patterns=["^run1/", "^run2/"])
        targets = {t.name: t for t in lrc.rli_targets()}
        assert targets["rli1"].bloom and not targets["rli2"].bloom
        assert targets["rli2"].patterns == ("^run1/", "^run2/")

    def test_duplicate_rejected(self, lrc):
        lrc.add_rli("rli1")
        with pytest.raises(UpdateTargetError):
            lrc.add_rli("rli1")

    def test_remove(self, lrc):
        lrc.add_rli("rli1", patterns=["x"])
        lrc.remove_rli("rli1")
        assert lrc.rli_targets() == []

    def test_remove_missing_raises(self, lrc):
        with pytest.raises(UpdateTargetError):
            lrc.remove_rli("ghost")


class TestChangeListeners:
    def test_create_notifies_presence(self, lrc):
        events = []
        lrc.add_lfn_listener(lambda lfn, present: events.append((lfn, present)))
        lrc.create_mapping("lfn1", "pfn1")
        assert events == [("lfn1", True)]

    def test_add_replica_does_not_notify(self, lrc):
        events = []
        lrc.create_mapping("lfn1", "pfn1")
        lrc.add_lfn_listener(lambda lfn, present: events.append((lfn, present)))
        lrc.add_mapping("lfn1", "pfn2")
        assert events == []

    def test_partial_delete_does_not_notify(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        lrc.add_mapping("lfn1", "pfn2")
        events = []
        lrc.add_lfn_listener(lambda lfn, present: events.append((lfn, present)))
        lrc.delete_mapping("lfn1", "pfn1")
        assert events == []

    def test_last_delete_notifies_absence(self, lrc):
        lrc.create_mapping("lfn1", "pfn1")
        events = []
        lrc.add_lfn_listener(lambda lfn, present: events.append((lfn, present)))
        lrc.delete_mapping("lfn1", "pfn1")
        assert events == [("lfn1", False)]


class TestObjTypeAttrTypeParsing:
    def test_objtype_aliases(self):
        assert ObjType.parse("logical") is ObjType.LFN
        assert ObjType.parse("target") is ObjType.PFN
        assert ObjType.parse(0) is ObjType.LFN
        assert ObjType.parse(ObjType.PFN) is ObjType.PFN

    def test_objtype_invalid(self):
        with pytest.raises(InvalidAttributeError):
            ObjType.parse("banana")

    def test_attrtype_aliases(self):
        assert AttrType.parse("string") is AttrType.STR
        assert AttrType.parse("double") is AttrType.FLOAT
        assert AttrType.parse("timestamp") is AttrType.DATE

    def test_attrtype_invalid(self):
        with pytest.raises(InvalidAttributeError):
            AttrType.parse("blob")
