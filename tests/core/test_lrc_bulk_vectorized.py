"""Vectorized bulk-operation parity: batched SQL must match serial semantics.

``bulk_create``/``bulk_delete``/``bulk_query`` now run chunked IN-list
probes and multi-row INSERTs instead of replaying the single-pair code
path per element.  These tests pin the observable contract to the serial
path: per-pair failure strings, reference counts, orphan pruning,
attribute cleanup, and change notifications.
"""

import pytest

from repro.core.lrc import (
    AttrType,
    LocalReplicaCatalog,
    ObjType,
    _IN_CHUNK,
    _SMALL_IN_CHUNK,
    _in_chunks,
)
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.db.postgres_engine import PostgresEngine


@pytest.fixture(params=["mysql", "postgresql"])
def lrc(request):
    if request.param == "mysql":
        engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    else:
        engine = PostgresEngine(fsync=False, sync_latency=0.0)
    catalog = LocalReplicaCatalog(Connection(engine, "bulkv"), name="bulkv")
    catalog.init_schema()
    return catalog


def serial_reference(lrc_factory, pairs_create, pairs_delete):
    """Ground truth: run the same workload through the per-pair methods."""
    lrc = lrc_factory()
    create_failures = lrc._bulk_apply(pairs_create, lrc.create_mapping)
    delete_failures = lrc._bulk_apply(pairs_delete, lrc.delete_mapping)
    return lrc, create_failures, delete_failures


class TestInChunks:
    def test_small_lists_use_small_chunk(self):
        chunks = list(_in_chunks(list(range(5))))
        assert len(chunks) == 1 and len(chunks[0]) == _SMALL_IN_CHUNK
        # Padding repeats the last element (IN dedups, semantically free).
        assert chunks[0][:5] == [0, 1, 2, 3, 4]
        assert set(chunks[0][5:]) == {4}

    def test_large_lists_use_fixed_chunk(self):
        values = list(range(_IN_CHUNK + 3))
        chunks = list(_in_chunks(values))
        assert [len(c) for c in chunks] == [_IN_CHUNK, _IN_CHUNK]
        assert chunks[1][:3] == [_IN_CHUNK, _IN_CHUNK + 1, _IN_CHUNK + 2]

    def test_empty(self):
        assert list(_in_chunks([])) == []


class TestBulkCreateParity:
    def test_duplicate_inside_batch_fails_like_serial(self, lrc):
        failures = lrc.bulk_create(
            [("a", "p1"), ("a", "p2"), ("b", "p3")]
        )
        assert len(failures) == 1
        lfn, pfn, why = failures[0]
        assert (lfn, pfn) == ("a", "p2")
        assert "MappingExistsError" in why and "a" in why
        # First writer won, exactly as the serial loop would have it.
        assert lrc.get_mappings("a") == ["p1"]

    def test_preexisting_name_fails(self, lrc):
        lrc.create_mapping("old", "p0")
        failures = lrc.bulk_create([("old", "px"), ("new", "py")])
        assert [(f[0], f[1]) for f in failures] == [("old", "px")]
        assert lrc.get_mappings("new") == ["py"]

    def test_invalid_names_fail_per_pair(self, lrc):
        failures = lrc.bulk_create([("", "p"), ("ok", "p"), ("x", "")])
        assert len(failures) == 2
        assert all("InvalidNameError" in f[2] for f in failures)
        assert lrc.get_mappings("ok") == ["p"]

    def test_shared_pfn_refcounts(self, lrc):
        lrc.bulk_create([(f"l{i}", "shared") for i in range(10)])
        assert sorted(lrc.get_lfns("shared")) == sorted(
            f"l{i}" for i in range(10)
        )
        # Deleting all but one must keep the shared target row alive.
        lrc.bulk_delete([(f"l{i}", "shared") for i in range(9)])
        assert lrc.get_lfns("shared") == ["l9"]

    def test_large_batch_crosses_chunk_boundaries(self, lrc):
        n = _IN_CHUNK + 40
        failures = lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(n)])
        assert failures == []
        assert lrc.lfn_count() == n
        result = lrc.bulk_query([f"l{i}" for i in range(n)])
        assert len(result) == n and result["l0"] == ["p0"]

    def test_notifications_fire_per_created_pair(self, lrc):
        events = []
        lrc.add_mapping_listener(
            lambda lfn, pfn, added: events.append((lfn, pfn, added))
        )
        lrc.bulk_create([("n1", "p1"), ("n1", "dup"), ("n2", "p2")])
        assert events == [("n1", "p1", True), ("n2", "p2", True)]


class TestBulkDeleteParity:
    def test_missing_and_duplicate_pairs_fail(self, lrc):
        lrc.bulk_create([("a", "p1"), ("b", "p2")])
        failures = lrc.bulk_delete(
            [("a", "p1"), ("a", "p1"), ("ghost", "p9")]
        )
        assert len(failures) == 2
        why = {(f[0], f[1]): f[2] for f in failures}
        # Second delete of the same pair fails like the serial path.
        assert "MappingNotFoundError" in why[("a", "p1")]
        assert "MappingNotFoundError" in why[("ghost", "p9")]
        assert lrc.get_mappings("b") == ["p2"]

    def test_partial_delete_keeps_remaining_replicas(self, lrc):
        lrc.create_mapping("multi", "p1")
        lrc.add_mapping("multi", "p2")
        lrc.add_mapping("multi", "p3")
        assert lrc.bulk_delete([("multi", "p2")]) == []
        assert sorted(lrc.get_mappings("multi")) == ["p1", "p3"]

    def test_orphan_attributes_pruned(self, lrc):
        lrc.create_mapping("attr-lfn", "attr-pfn")
        lrc.define_attribute("owner", ObjType.LFN, AttrType.STR)
        lrc.add_attribute("attr-lfn", "owner", ObjType.LFN, "me")
        assert lrc.bulk_delete([("attr-lfn", "attr-pfn"), ("x", "y")]) != []
        # The name row and its attribute values are gone; re-creating the
        # name starts clean rather than inheriting stale attributes.
        lrc.create_mapping("attr-lfn", "p-new")
        assert lrc.get_attributes("attr-lfn", ObjType.LFN) == {}

    def test_roundtrip_leaves_empty_catalog(self, lrc):
        pairs = [(f"l{i}", f"p{i % 7}") for i in range(120)]
        assert lrc.bulk_create(pairs) == []
        assert lrc.bulk_delete(pairs) == []
        assert lrc.lfn_count() == 0
        assert lrc.mapping_count() == 0

    def test_matches_serial_reference_run(self):
        def factory():
            engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
            cat = LocalReplicaCatalog(Connection(engine, "ref"), name="ref")
            cat.init_schema()
            return cat

        creates = [(f"l{i}", f"p{i % 3}") for i in range(20)]
        creates += [("l0", "dup-target"), ("", "bad")]
        deletes = [(f"l{i}", f"p{i % 3}") for i in range(0, 20, 2)]
        deletes += [("l2", "p2"), ("ghost", "p0")]  # dup + missing
        serial, serial_cf, serial_df = serial_reference(
            factory, creates, deletes
        )
        vector = factory()
        vector_cf = vector.bulk_create(creates)
        vector_df = vector.bulk_delete(deletes)
        assert vector_cf == serial_cf
        assert vector_df == serial_df
        lfns = [f"l{i}" for i in range(20)]
        assert vector.bulk_query(lfns) == serial.bulk_query(lfns)
        assert vector.lfn_count() == serial.lfn_count()
        assert vector.mapping_count() == serial.mapping_count()


class TestBulkQueryParity:
    def test_vectorized_matches_per_name_lookups(self, lrc):
        lrc.bulk_create([(f"q{i}", f"p{i % 4}") for i in range(30)])
        lrc.add_mapping("q0", "extra")
        names = [f"q{i}" for i in range(30)] + ["absent", "q0"]
        result = lrc.bulk_query(names)
        assert "absent" not in result
        assert sorted(result["q0"]) == ["extra", "p0"]
        for i in range(1, 30):
            assert result[f"q{i}"] == lrc.get_mappings(f"q{i}")

    def test_small_input_uses_serial_path(self, lrc):
        lrc.create_mapping("one", "p1")
        assert lrc.bulk_query(["one", "nope"]) == {"one": ["p1"]}

    def test_duplicate_names_in_request(self, lrc):
        lrc.bulk_create([("d1", "p"), ("d2", "p"), ("d3", "p")])
        result = lrc.bulk_query(["d1", "d1", "d2", "d1"])
        assert result == {"d1": ["p"], "d2": ["p"]}
