"""Model-based (stateful) property test of the LocalReplicaCatalog.

Hypothesis drives random sequences of create/add/delete against the real
catalog and a trivial dict model; after every step the catalog must agree
with the model on membership, mappings, reverse mappings and counts.
This is the strongest guard on the ref-counting/pruning logic.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

import pytest

from repro.core.errors import MappingExistsError, MappingNotFoundError
from repro.core.lrc import LocalReplicaCatalog
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection

LFNS = [f"lfn{i}" for i in range(6)]
PFNS = [f"pfn{i}" for i in range(4)]


class LRCMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        self.lrc = LocalReplicaCatalog(Connection(engine, "sm"), name="sm")
        self.lrc.init_schema()
        self.model: dict[str, set[str]] = {}

    @rule(lfn=st.sampled_from(LFNS), pfn=st.sampled_from(PFNS))
    def create(self, lfn, pfn):
        if lfn in self.model:
            with pytest.raises(MappingExistsError):
                self.lrc.create_mapping(lfn, pfn)
        else:
            self.lrc.create_mapping(lfn, pfn)
            self.model[lfn] = {pfn}

    @rule(lfn=st.sampled_from(LFNS), pfn=st.sampled_from(PFNS))
    def add(self, lfn, pfn):
        if lfn not in self.model:
            with pytest.raises(MappingNotFoundError):
                self.lrc.add_mapping(lfn, pfn)
        elif pfn in self.model[lfn]:
            with pytest.raises(MappingExistsError):
                self.lrc.add_mapping(lfn, pfn)
        else:
            self.lrc.add_mapping(lfn, pfn)
            self.model[lfn].add(pfn)

    @rule(lfn=st.sampled_from(LFNS), pfn=st.sampled_from(PFNS))
    def delete(self, lfn, pfn):
        if lfn in self.model and pfn in self.model[lfn]:
            self.lrc.delete_mapping(lfn, pfn)
            self.model[lfn].discard(pfn)
            if not self.model[lfn]:
                del self.model[lfn]
        else:
            with pytest.raises(MappingNotFoundError):
                self.lrc.delete_mapping(lfn, pfn)

    @invariant()
    def mappings_agree(self):
        assert self.lrc.lfn_count() == len(self.model)
        assert self.lrc.mapping_count() == sum(
            len(pfns) for pfns in self.model.values()
        )
        for lfn, pfns in self.model.items():
            assert set(self.lrc.get_mappings(lfn)) == pfns
        assert sorted(self.lrc.all_lfns()) == sorted(self.model)

    @invariant()
    def reverse_mappings_agree(self):
        reverse: dict[str, set[str]] = {}
        for lfn, pfns in self.model.items():
            for pfn in pfns:
                reverse.setdefault(pfn, set()).add(lfn)
        for pfn in PFNS:
            if pfn in reverse:
                assert set(self.lrc.get_lfns(pfn)) == reverse[pfn]
            else:
                with pytest.raises(MappingNotFoundError):
                    self.lrc.get_lfns(pfn)


LRCMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestLRCStateful = LRCMachine.TestCase
