"""StaticMembership and hierarchical RLI propagation tests."""

import pytest

from repro.core.client import connect
from repro.core.config import ServerConfig, ServerRole
from repro.core.errors import UpdateTargetError
from repro.core.hierarchy import HierarchicalUpdater
from repro.core.membership import (
    DEFAULT,
    MemberAddress,
    StaticMembership,
    resolve_sink,
)
from repro.core.server import RLSServer
from repro.core.updates import DirectSink


class TestStaticMembership:
    def test_register_and_lookup(self):
        membership = StaticMembership()
        membership.register_local("site-a")
        assert membership.lookup("site-a").kind == "local"

    def test_unknown_member_raises(self):
        with pytest.raises(UpdateTargetError):
            StaticMembership().lookup("ghost")

    def test_members_sorted(self):
        membership = StaticMembership()
        membership.register_local("zeta")
        membership.register_local("alpha")
        assert [m.name for m in membership.members()] == ["alpha", "zeta"]

    def test_unregister(self):
        membership = StaticMembership()
        membership.register_local("x")
        membership.unregister("x")
        with pytest.raises(UpdateTargetError):
            membership.lookup("x")

    def test_register_tcp_address(self):
        membership = StaticMembership()
        membership.register_tcp("remote", "10.0.0.1", 3900)
        addr = membership.lookup("remote")
        assert addr == MemberAddress("remote", "tcp", "10.0.0.1", 3900)

    def test_connect_local_member(self, make_server):
        server = make_server(ServerRole.BOTH)
        membership = StaticMembership()
        membership.register_local(server.config.name)
        client = membership.connect(server.config.name)
        assert client.call("admin_ping") == "pong"
        client.close()

    def test_resolve_sink_fallback_to_local_registry(self, make_server):
        """resolve_sink finds in-process servers without membership entries."""
        server = make_server(ServerRole.RLI)
        sink = resolve_sink(server.config.name)
        sink.full_update("some-lrc", ["lfn1"])
        assert server.rli.query("lfn1") == ["some-lrc"]


class TestCrossServerUpdates:
    def test_lrc_updates_separate_rli_server(self, make_server):
        """Two servers: LRC pushes soft state to a distinct RLI via RPC."""
        rli_server = make_server(ServerRole.RLI)
        lrc_server = make_server(ServerRole.LRC)
        client = connect(lrc_server.config.name)
        client.create("dist-lfn", "dist-pfn")
        client.add_rli(rli_server.config.name)
        client.trigger_full_update()
        rli_client = connect(rli_server.config.name)
        assert rli_client.rli_query("dist-lfn") == [lrc_server.config.name]
        client.close()
        rli_client.close()

    def test_bloom_across_servers(self, make_server):
        rli_server = make_server(ServerRole.RLI)
        lrc_server = make_server(ServerRole.LRC)
        client = connect(lrc_server.config.name)
        client.bulk_create([(f"b{i}", f"p{i}") for i in range(20)])
        client.add_rli(rli_server.config.name, bloom=True)
        client.rebuild_bloom()
        client.trigger_full_update()
        rli_client = connect(rli_server.config.name)
        assert rli_client.rli_query("b7") == [lrc_server.config.name]
        assert rli_server.rli.bloom_filter_count() == 1
        client.close()
        rli_client.close()


class TestHierarchy:
    def test_relational_state_forwarded(self, make_server):
        """LRC -> local RLI -> parent RLI, attribution preserved (§7)."""
        parent = make_server(ServerRole.RLI)
        child = make_server(ServerRole.RLI)
        child.rli.apply_full_update("lrc-leaf", ["h-lfn1", "h-lfn2"])
        updater = HierarchicalUpdater(
            child.rli, resolve_sink, parents=[parent.config.name]
        )
        updater.forward_once()
        assert parent.rli.query("h-lfn1") == ["lrc-leaf"]
        assert updater.stats.names_forwarded == 2

    def test_bloom_state_forwarded(self, make_server):
        from repro.core.bloom import BloomFilter, BloomParameters

        parent = make_server(ServerRole.RLI)
        child = make_server(ServerRole.RLI)
        params = BloomParameters.for_entries(100)
        bf = BloomFilter.from_names(["bloom-lfn"], params)
        child.rli.apply_bloom_update(
            "lrc-b", bf.to_bytes(), params.num_bits, params.num_hashes, 1
        )
        updater = HierarchicalUpdater(
            child.rli, resolve_sink, parents=[parent.config.name]
        )
        updater.forward_once()
        assert parent.rli.query("bloom-lfn") == ["lrc-b"]
        assert updater.stats.bloom_filters_forwarded == 1

    def test_two_level_tree(self, make_server):
        """Multiple leaf RLIs aggregating into one root."""
        root = make_server(ServerRole.RLI)
        leaves = [make_server(ServerRole.RLI) for _ in range(3)]
        for i, leaf in enumerate(leaves):
            leaf.rli.apply_full_update(f"lrc{i}", [f"tree-lfn{i}", "tree-common"])
            HierarchicalUpdater(
                leaf.rli, resolve_sink, parents=[root.config.name]
            ).forward_once()
        assert sorted(root.rli.query("tree-common")) == ["lrc0", "lrc1", "lrc2"]
        assert root.rli.query("tree-lfn1") == ["lrc1"]

    def test_direct_sink_parent(self, make_server):
        child = make_server(ServerRole.RLI)
        parent = make_server(ServerRole.RLI)
        child.rli.apply_full_update("lrcX", ["d-lfn"])
        updater = HierarchicalUpdater(
            child.rli, lambda name: DirectSink(parent.rli), parents=["ignored"]
        )
        updater.forward_once()
        assert parent.rli.query("d-lfn") == ["lrcX"]
