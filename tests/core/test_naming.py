"""Name validation and wildcard translation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import InvalidNameError
from repro.core.naming import (
    MAX_NAME_LENGTH,
    has_wildcard,
    validate_name,
    wildcard_to_like,
    wildcard_to_regex,
)


class TestValidateName:
    def test_valid_names_pass_through(self):
        for name in ("lfn1", "a", "gsiftp://host/path/file.dat", "x" * 250):
            assert validate_name(name) == name

    def test_empty_rejected(self):
        with pytest.raises(InvalidNameError):
            validate_name("")

    def test_overlong_rejected(self):
        with pytest.raises(InvalidNameError):
            validate_name("x" * (MAX_NAME_LENGTH + 1))

    def test_nul_rejected(self):
        with pytest.raises(InvalidNameError):
            validate_name("a\x00b")

    def test_non_string_rejected(self):
        with pytest.raises(InvalidNameError):
            validate_name(123)

    def test_kind_in_message(self):
        with pytest.raises(InvalidNameError, match="logical name"):
            validate_name("", kind="logical name")


class TestWildcards:
    def test_has_wildcard(self):
        assert has_wildcard("lfn*")
        assert has_wildcard("lfn?")
        assert not has_wildcard("lfn1")

    def test_to_like(self):
        assert wildcard_to_like("lfn*") == "lfn%"
        assert wildcard_to_like("f?le*") == "f_le%"
        assert wildcard_to_like("plain") == "plain"

    def test_regex_star(self):
        rx = wildcard_to_regex("lfn*")
        assert rx.fullmatch("lfn123")
        assert rx.fullmatch("lfn")
        assert not rx.fullmatch("xlfn")

    def test_regex_question(self):
        rx = wildcard_to_regex("f?le")
        assert rx.fullmatch("file") and rx.fullmatch("fXle")
        assert not rx.fullmatch("fle")

    def test_regex_escapes_specials(self):
        rx = wildcard_to_regex("a.b+c")
        assert rx.fullmatch("a.b+c")
        assert not rx.fullmatch("aXb+c")


@settings(max_examples=100)
@given(st.text(st.characters(codec="utf-8", exclude_characters="*?%_\x00"), max_size=20))
def test_property_plain_name_matches_itself(name):
    """Property: a wildcard-free pattern matches exactly itself."""
    assert wildcard_to_regex(name).fullmatch(name)


@settings(max_examples=100)
@given(
    st.text("abc", max_size=8),
    st.text("abc", max_size=8),
)
def test_property_star_pattern_matches_any_expansion(prefix, filler):
    assert wildcard_to_regex(prefix + "*").fullmatch(prefix + filler)
