"""Parallel multi-RLI update fan-out tests."""

import threading
import time

import pytest

from repro.core.errors import UpdateTargetError
from repro.core.lrc import LocalReplicaCatalog
from repro.core.updates import UpdateManager, UpdatePolicy
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection


class SlowSink:
    """Sink that records concurrency while sleeping per update."""

    def __init__(self, delay=0.05):
        self.delay = delay
        self.lock = threading.Lock()
        self.active = 0
        self.max_active = 0
        self.updates = []

    def full_update(self, lrc_name, lfns):
        with self.lock:
            self.active += 1
            self.max_active = max(self.max_active, self.active)
        time.sleep(self.delay)
        with self.lock:
            self.active -= 1
            self.updates.append(len(lfns))

    def incremental_update(self, *a):
        pass

    def bloom_update(self, *a):
        self.full_update("x", [])


class FailingSink:
    def full_update(self, *a):
        raise ConnectionError("rli down")

    def incremental_update(self, *a):
        pass

    def bloom_update(self, *a):
        raise ConnectionError("rli down")


def make_manager(sinks, parallel):
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "pu"), name="pu")
    lrc.init_schema()
    manager = UpdateManager(
        lrc,
        lambda name: sinks[name],
        policy=UpdatePolicy(parallel_updates=parallel),
    )
    return lrc, manager


class TestParallelFanout:
    def test_targets_pushed_concurrently(self):
        sink = SlowSink()
        sinks = {f"rli{i}": sink for i in range(4)}
        lrc, manager = make_manager(sinks, parallel=True)
        for name in sinks:
            lrc.add_rli(name)
        lrc.create_mapping("x", "p")
        start = time.perf_counter()
        manager.send_full_update()
        elapsed = time.perf_counter() - start
        assert sink.max_active >= 2, "pushes never overlapped"
        assert elapsed < 4 * sink.delay  # faster than sequential
        assert len(sink.updates) == 4
        assert manager.stats.full_updates == 4

    def test_sequential_by_default(self):
        sink = SlowSink(delay=0.02)
        sinks = {f"rli{i}": sink for i in range(3)}
        lrc, manager = make_manager(sinks, parallel=False)
        for name in sinks:
            lrc.add_rli(name)
        lrc.create_mapping("x", "p")
        manager.send_full_update()
        assert sink.max_active == 1

    def test_one_failure_does_not_skip_others(self):
        good = SlowSink(delay=0.0)
        sinks = {"good1": good, "bad": FailingSink(), "good2": good}
        lrc, manager = make_manager(sinks, parallel=True)
        for name in sinks:
            lrc.add_rli(name)
        lrc.create_mapping("x", "p")
        with pytest.raises(ConnectionError):
            manager.send_full_update()
        assert len(good.updates) == 2  # both healthy targets got pushed

    def test_no_targets_still_raises(self):
        _, manager = make_manager({}, parallel=True)
        with pytest.raises(UpdateTargetError):
            manager.send_full_update()

    def test_mixed_bloom_and_full_parallel(self):
        sink = SlowSink(delay=0.01)
        sinks = {"full-rli": sink, "bloom-rli": sink}
        lrc, manager = make_manager(sinks, parallel=True)
        lrc.add_rli("full-rli")
        lrc.add_rli("bloom-rli", bloom=True)
        lrc.create_mapping("x", "p")
        manager.send_full_update()
        assert len(sink.updates) == 2
