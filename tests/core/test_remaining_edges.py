"""Last-mile edge coverage: single-target pushes, CLI postgres serve,
ORDER BY + DISTINCT interaction, calibration overrides."""

import io

import pytest

from repro.cli import main
from repro.core.config import ServerRole
from repro.core.lrc import LocalReplicaCatalog, RLITarget
from repro.core.updates import UpdateManager, UpdatePolicy
from repro.db.errors import SQLSyntaxError
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection


class RecordingSink:
    def __init__(self):
        self.full = []
        self.bloom = []

    def full_update(self, lrc, lfns):
        self.full.append((lrc, list(lfns)))

    def incremental_update(self, *a):
        pass

    def bloom_update(self, lrc, *a):
        self.bloom.append(lrc)


class TestSingleTargetPush:
    def test_send_full_update_to_one_named_target(self):
        engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        lrc = LocalReplicaCatalog(Connection(engine, "st"), name="st")
        lrc.init_schema()
        sinks = {"a": RecordingSink(), "b": RecordingSink()}
        manager = UpdateManager(lrc, lambda n: sinks[n], policy=UpdatePolicy())
        lrc.add_rli("a")
        lrc.add_rli("b")
        lrc.create_mapping("x", "p")
        manager.send_full_update(target=RLITarget("a"))
        assert sinks["a"].full and not sinks["b"].full


class TestCLIServeVariants:
    def test_serve_postgres_lrc_only(self):
        out = io.StringIO()
        import threading

        def serve():
            main(
                [
                    "serve", "--name", "pg-served", "--role", "lrc",
                    "--backend", "postgresql", "--run-seconds", "1.0",
                ],
                out=out,
            )

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            import time

            deadline = time.time() + 3.0
            ok = False
            while time.time() < deadline and not ok:
                try:
                    code, _ = 0, main(
                        ["create", "--server", "pg-served", "pg-lfn", "p"],
                        out=io.StringIO(),
                    )
                    ok = True
                except Exception:
                    time.sleep(0.05)
            assert ok
        finally:
            thread.join()
        assert "serving pg-served" in out.getvalue()

    def test_serve_profile_hz_enables_sampler(self):
        import threading
        import time

        out = io.StringIO()

        def serve():
            main(
                [
                    "serve", "--name", "prof-served", "--role", "both",
                    "--run-seconds", "1.5", "--profile-hz", "500",
                ],
                out=out,
            )

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            deadline = time.time() + 5.0
            sampled = False
            while time.time() < deadline and not sampled:
                try:
                    profile_out = io.StringIO()
                    code = main(["profile", "prof-served"], out=profile_out)
                    sampled = code == 0 and "samples by role" in profile_out.getvalue()
                except Exception:
                    pass
                if not sampled:
                    time.sleep(0.05)
            assert sampled
        finally:
            thread.join()
        assert "profiling enabled at 500 Hz" in out.getvalue()


class TestOrderByDistinctInteraction:
    def test_distinct_with_nonprojected_order_rejected(self):
        db = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t (a, b) VALUES (1, 2), (1, 3)")
        with pytest.raises(SQLSyntaxError, match="DISTINCT"):
            db.execute("SELECT DISTINCT a FROM t ORDER BY b")

    def test_distinct_with_projected_order_ok(self):
        db = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        db.execute("CREATE TABLE t (a INT, b INT)")
        db.execute("INSERT INTO t (a, b) VALUES (2, 1), (1, 1), (2, 1)")
        rows = db.execute("SELECT DISTINCT a FROM t ORDER BY a DESC").rows
        assert [r[0] for r in rows] == [2, 1]

    def test_order_by_source_column_across_join(self):
        db = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        db.execute(
            "CREATE TABLE l (id INT NOT NULL, rank INT, PRIMARY KEY (id))"
        )
        db.execute("CREATE TABLE m (lid INT, tag VARCHAR(10))")
        db.execute("INSERT INTO l (id, rank) VALUES (1, 30), (2, 10), (3, 20)")
        db.execute(
            "INSERT INTO m (lid, tag) VALUES (1, 'a'), (2, 'b'), (3, 'c')"
        )
        rows = db.execute(
            "SELECT m.tag FROM l JOIN m ON l.id = m.lid ORDER BY rank"
        ).rows
        assert [r[0] for r in rows] == ["b", "c", "a"]


class TestCalibrationOverrides:
    def test_lan_calibration_custom_ingest(self):
        from repro.sim.models import LANCalibration, uncompressed_update_times

        fast = uncompressed_update_times(
            50_000, 1, rounds=2,
            calib=LANCalibration(rli_ingest_entries_per_sec=10_000),
        )
        slow = uncompressed_update_times(
            50_000, 1, rounds=2,
            calib=LANCalibration(rli_ingest_entries_per_sec=1_000),
        )
        assert slow.mean_update_time > 5 * fast.mean_update_time

    def test_wan_calibration_window_effect(self):
        from repro.sim.models import WANCalibration, bloom_update_times_wan

        small = bloom_update_times_wan(
            1_000_000, 1, calib=WANCalibration(tcp_window_bytes=16 * 1024)
        )
        large = bloom_update_times_wan(
            1_000_000, 1, calib=WANCalibration(tcp_window_bytes=256 * 1024)
        )
        # Bigger window -> higher per-flow throughput -> faster update.
        assert large.mean_update_time < small.mean_update_time
