"""ReplicaLocationIndex tests: both stores, expiry, wildcard restrictions."""

import pytest

from repro.core.bloom import BloomFilter, BloomParameters
from repro.core.errors import MappingNotFoundError, WildcardNotSupportedError
from repro.core.rli import ReplicaLocationIndex
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def rli(clock):
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    index = ReplicaLocationIndex(
        Connection(engine, "rli-test"), name="rli-test", timeout=60.0, clock=clock
    )
    index.init_schema()
    return index


def bloom_payload(names, entries=None):
    params = BloomParameters.for_entries(entries or max(len(names), 16))
    bf = BloomFilter.from_names(names, params)
    return bf.to_bytes(), params.num_bits, params.num_hashes, len(names)


class TestFullUpdates:
    def test_update_then_query(self, rli):
        rli.apply_full_update("lrcA", ["lfn1", "lfn2"])
        assert rli.query("lfn1") == ["lrcA"]

    def test_multiple_lrcs_same_lfn(self, rli):
        rli.apply_full_update("lrcA", ["shared"])
        rli.apply_full_update("lrcB", ["shared"])
        assert sorted(rli.query("shared")) == ["lrcA", "lrcB"]

    def test_query_missing_raises(self, rli):
        rli.apply_full_update("lrcA", ["lfn1"])
        with pytest.raises(MappingNotFoundError):
            rli.query("ghost")

    def test_repeat_update_refreshes_not_duplicates(self, rli):
        rli.apply_full_update("lrcA", ["lfn1"])
        rli.apply_full_update("lrcA", ["lfn1"])
        assert rli.query("lfn1") == ["lrcA"]
        assert rli.mapping_count() == 1

    def test_returns_count(self, rli):
        assert rli.apply_full_update("lrcA", ["a", "b", "c"]) == 3

    def test_bulk_query(self, rli):
        rli.apply_full_update("lrcA", ["a", "b"])
        assert rli.bulk_query(["a", "b", "missing"]) == {
            "a": ["lrcA"],
            "b": ["lrcA"],
        }


class TestIncrementalUpdates:
    def test_adds_applied(self, rli):
        rli.apply_incremental_update("lrcA", ["new1"], [])
        assert rli.query("new1") == ["lrcA"]

    def test_removes_applied(self, rli):
        rli.apply_full_update("lrcA", ["x"])
        rli.apply_incremental_update("lrcA", [], ["x"])
        with pytest.raises(MappingNotFoundError):
            rli.query("x")

    def test_remove_respects_other_lrcs(self, rli):
        rli.apply_full_update("lrcA", ["x"])
        rli.apply_full_update("lrcB", ["x"])
        rli.apply_incremental_update("lrcA", [], ["x"])
        assert rli.query("x") == ["lrcB"]

    def test_remove_unknown_name_is_noop(self, rli):
        rli.apply_incremental_update("lrcA", [], ["never-seen"])  # no raise


class TestBloomStore:
    def test_update_and_query(self, rli):
        payload, nbits, k, n = bloom_payload(["lfn1", "lfn2"])
        rli.apply_bloom_update("lrcA", payload, nbits, k, n)
        assert rli.query("lfn1") == ["lrcA"]
        assert rli.bloom_filter_count() == 1

    def test_replacement_not_accumulation(self, rli):
        p1 = bloom_payload(["old"])
        rli.apply_bloom_update("lrcA", *p1)
        p2 = bloom_payload(["new"])
        rli.apply_bloom_update("lrcA", *p2)
        assert rli.query("new") == ["lrcA"]
        with pytest.raises(MappingNotFoundError):
            rli.query("old")
        assert rli.bloom_filter_count() == 1

    def test_combined_stores_in_one_query(self, rli):
        rli.apply_full_update("lrc-db", ["shared"])
        rli.apply_bloom_update("lrc-bloom", *bloom_payload(["shared"]))
        assert sorted(rli.query("shared")) == ["lrc-bloom", "lrc-db"]

    def test_multiple_filters_checked(self, rli):
        for i in range(5):
            rli.apply_bloom_update(f"lrc{i}", *bloom_payload([f"only{i}", "common"]))
        assert rli.query("only3") == ["lrc3"]
        assert len(rli.query("common")) == 5

    def test_stats(self, rli):
        rli.apply_bloom_update("lrcA", *bloom_payload(["a"]))
        rli.apply_bloom_update("lrcA", *bloom_payload(["a", "b"]))
        stats = rli.bloom_stats()["lrcA"]
        assert stats["updates_received"] == 2
        assert stats["size_bytes"] > 0


class TestWildcard:
    def test_wildcard_on_relational_store(self, rli):
        rli.apply_full_update("lrcA", ["run1/a", "run1/b", "run2/c"])
        hits = rli.query_wildcard("run1/*")
        assert sorted(lfn for lfn, _ in hits) == ["run1/a", "run1/b"]

    def test_wildcard_rejected_with_bloom_state(self, rli):
        """Paper §5.4: wildcard searches impossible with Bloom compression."""
        rli.apply_bloom_update("lrcA", *bloom_payload(["x"]))
        with pytest.raises(WildcardNotSupportedError):
            rli.query_wildcard("x*")


class TestExpiry:
    def test_stale_mappings_expire(self, rli, clock):
        rli.apply_full_update("lrcA", ["lfn1"])
        clock.advance(61.0)
        assert rli.expire_once() == 1
        with pytest.raises(MappingNotFoundError):
            rli.query("lfn1")

    def test_fresh_mappings_survive(self, rli, clock):
        rli.apply_full_update("lrcA", ["lfn1"])
        clock.advance(30.0)
        assert rli.expire_once() == 0
        assert rli.query("lfn1") == ["lrcA"]

    def test_refresh_extends_lifetime(self, rli, clock):
        """The soft-state contract: periodic updates keep entries alive."""
        rli.apply_full_update("lrcA", ["lfn1"])
        clock.advance(40.0)
        rli.apply_full_update("lrcA", ["lfn1"])  # refresh
        clock.advance(40.0)  # 80s after first, 40s after refresh
        rli.expire_once()
        assert rli.query("lfn1") == ["lrcA"]

    def test_partial_expiry(self, rli, clock):
        rli.apply_full_update("lrcA", ["old"])
        clock.advance(40.0)
        rli.apply_full_update("lrcB", ["new"])
        clock.advance(30.0)  # old at 70s, new at 30s
        assert rli.expire_once() == 1
        assert rli.query("new") == ["lrcB"]

    def test_bloom_filters_expire(self, rli, clock):
        rli.apply_bloom_update("lrcA", *bloom_payload(["x"]))
        clock.advance(61.0)
        assert rli.expire_once() == 1
        assert rli.bloom_filter_count() == 0

    def test_bloom_refresh_survives(self, rli, clock):
        rli.apply_bloom_update("lrcA", *bloom_payload(["x"]))
        clock.advance(40.0)
        rli.apply_bloom_update("lrcA", *bloom_payload(["x"]))
        clock.advance(40.0)
        rli.expire_once()
        assert rli.bloom_filter_count() == 1

    def test_lfn_rows_pruned_when_last_mapping_expires(self, rli, clock):
        rli.apply_full_update("lrcA", ["lfn1"])
        clock.advance(61.0)
        rli.expire_once()
        assert rli.conn.execute("SELECT COUNT(*) FROM t_lfn").scalar() == 0


class TestManagement:
    def test_lrc_list_combines_stores(self, rli):
        rli.apply_full_update("db-lrc", ["a"])
        rli.apply_bloom_update("bloom-lrc", *bloom_payload(["b"]))
        assert rli.lrc_list() == ["bloom-lrc", "db-lrc"]

    def test_updates_applied_counter(self, rli):
        rli.apply_full_update("a", ["x"])
        rli.apply_incremental_update("a", ["y"], [])
        rli.apply_bloom_update("b", *bloom_payload(["z"]))
        assert rli.updates_applied == 3
