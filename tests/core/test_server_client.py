"""RLSServer + RLSClient tests over the RPC layer."""

import pytest

from repro.core.client import connect, connect_tcp_server
from repro.core.config import ServerConfig, ServerRole
from repro.core.errors import (
    MappingExistsError,
    MappingNotFoundError,
    NotConfiguredError,
    WildcardNotSupportedError,
)
from repro.core.server import RLSServer


@pytest.fixture
def client(server):
    c = connect(server.config.name)
    yield c
    c.close()


class TestMappingOps:
    def test_create_query(self, client):
        client.create("lfn1", "pfn1")
        assert client.get_mappings("lfn1") == ["pfn1"]

    def test_typed_errors_cross_rpc(self, client):
        client.create("lfn1", "pfn1")
        with pytest.raises(MappingExistsError):
            client.create("lfn1", "pfn2")
        with pytest.raises(MappingNotFoundError):
            client.get_mappings("ghost")

    def test_add_delete(self, client):
        client.create("lfn1", "pfn1")
        client.add("lfn1", "pfn2")
        client.delete("lfn1", "pfn1")
        assert client.get_mappings("lfn1") == ["pfn2"]

    def test_get_lfns(self, client):
        client.create("a", "shared")
        client.create("b", "shared")
        assert sorted(client.get_lfns("shared")) == ["a", "b"]

    def test_wildcard(self, client):
        client.create("run/f1", "p1")
        client.create("run/f2", "p2")
        assert len(client.query_wildcard("run/*")) == 2

    def test_bulk_roundtrip(self, client):
        failures = client.bulk_create([("a", "p1"), ("b", "p2")])
        assert failures == []
        assert client.bulk_query(["a", "b", "zz"]) == {"a": ["p1"], "b": ["p2"]}

    def test_bulk_failures_returned(self, client):
        client.create("dup", "p")
        failures = client.bulk_create([("dup", "p2")])
        assert len(failures) == 1 and failures[0][0] == "dup"

    def test_exists_and_counts(self, client):
        client.create("a", "p")
        assert client.exists("a") and not client.exists("b")
        assert client.lfn_count() == 1
        assert client.mapping_count() == 1


class TestAttributeOps:
    def test_attribute_lifecycle(self, client):
        client.create("l", "p")
        client.define_attribute("size", "pfn", "int")
        client.add_attribute("p", "size", "pfn", 7)
        assert client.get_attributes("p", "pfn") == {"size": 7}
        client.modify_attribute("p", "size", "pfn", 9)
        assert client.query_by_attribute("size", "pfn", 8, ">") == [("p", 9)]
        client.remove_attribute("p", "size", "pfn")
        assert client.get_attributes("p", "pfn") == {}
        client.undefine_attribute("size", "pfn")

    def test_bulk_add_attribute(self, client):
        client.define_attribute("size", "pfn", "int")
        client.bulk_create([("l1", "p1"), ("l2", "p2")])
        failures = client.bulk_add_attribute(
            [("p1", "size", 1), ("p2", "size", 2)], "pfn"
        )
        assert failures == []


class TestRLIOps:
    def test_self_update_loop(self, client):
        """A BOTH server: its LRC updates its own RLI."""
        client.create("lfn1", "pfn1")
        client.add_rli(client.stats()["name"], bloom=False)
        client.trigger_full_update()
        assert client.rli_query("lfn1") == [client.stats()["name"]]

    def test_rli_bulk_query(self, client):
        name = client.stats()["name"]
        client.add_rli(name)
        client.bulk_create([("a", "p1"), ("b", "p2")])
        client.trigger_full_update()
        assert set(client.rli_bulk_query(["a", "b", "zz"])) == {"a", "b"}

    def test_rli_wildcard_uncompressed(self, client):
        name = client.stats()["name"]
        client.add_rli(name)
        client.create("run/x", "p")
        client.trigger_full_update()
        assert client.rli_query_wildcard("run/*") == [("run/x", name)]

    def test_rli_wildcard_rejected_with_bloom(self, client):
        name = client.stats()["name"]
        client.add_rli(name, bloom=True)
        client.create("x", "p")
        client.trigger_full_update()
        with pytest.raises(WildcardNotSupportedError):
            client.rli_query_wildcard("x*")

    def test_incremental_trigger(self, client):
        name = client.stats()["name"]
        client.add_rli(name)
        client.create("inc1", "p")
        assert client.trigger_incremental_update() == 1
        assert client.rli_query("inc1") == [name]

    def test_rli_lrc_list(self, client):
        name = client.stats()["name"]
        client.add_rli(name)
        client.create("x", "p")
        client.trigger_full_update()
        assert client.rli_lrc_list() == [name]

    def test_list_rlis(self, client):
        client.add_rli("some-rli", bloom=True, patterns=["^a"])
        entries = client.list_rlis()
        assert entries == [
            {"name": "some-rli", "bloom": True, "patterns": ["^a"]}
        ]
        client.remove_rli("some-rli")
        assert client.list_rlis() == []


class TestRoles:
    def test_lrc_only_rejects_rli_ops(self, make_server):
        server = make_server(ServerRole.LRC)
        client = connect(server.config.name)
        with pytest.raises(NotConfiguredError):
            client.rli_query("x")

    def test_rli_only_rejects_lrc_ops(self, make_server):
        server = make_server(ServerRole.RLI)
        client = connect(server.config.name)
        with pytest.raises(NotConfiguredError):
            client.create("x", "p")
        with pytest.raises(NotConfiguredError):
            client.trigger_full_update()

    def test_stats_reflect_roles(self, make_server):
        server = make_server(ServerRole.RLI)
        client = connect(server.config.name)
        stats = client.stats()
        assert stats["roles"] == {"lrc": False, "rli": True}
        assert "lrc" not in stats


class TestAdmin:
    def test_ping(self, client):
        assert client.ping() == "pong"

    def test_expire_once(self, client):
        assert client.expire_once() == 0

    def test_stats_counters(self, client):
        client.create("a", "p")
        stats = client.stats()
        assert stats["requests_served"] >= 1
        assert stats["lrc"]["lfns"] == 1


class TestTCPServer:
    def test_full_stack_over_tcp(self):
        server = RLSServer(
            ServerConfig(
                name="tcp-test-server",
                role=ServerRole.BOTH,
                tcp=True,
                sync_latency=0.0,
            )
        ).start()
        try:
            host, port = server.tcp_address
            client = connect_tcp_server(host, port)
            client.create("tcp-lfn", "tcp-pfn")
            assert client.get_mappings("tcp-lfn") == ["tcp-pfn"]
            client.close()
        finally:
            server.stop()


class TestLifecycle:
    def test_context_manager(self):
        with RLSServer(
            ServerConfig(name="ctx-server", role=ServerRole.LRC, sync_latency=0.0)
        ) as server:
            client = connect("ctx-server")
            client.create("x", "p")
            client.close()
        # After stop, the local endpoint is gone.
        from repro.net.errors import TransportClosedError

        with pytest.raises(TransportClosedError):
            connect("ctx-server")

    def test_double_start_is_idempotent(self, make_server):
        server = make_server(ServerRole.BOTH)
        server.start()
        server.start()
        server.stop()
