"""Slow-query surfaces: admin RPC, span linkage, CLI, HTTP gateway."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.core.client import connect
from repro.core.config import ServerRole
from repro.obs.tracing import SpanSink, Tracer, install_tracer


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


@pytest.fixture
def profiled_server(make_server):
    """LRC+RLI server retaining every statement (slow threshold 0)."""
    return make_server(ServerRole.BOTH, slow_query_threshold=0.0)


@pytest.fixture
def traced():
    sink = SpanSink(latency_threshold=0.0)
    install_tracer(Tracer(sink=sink))
    yield sink
    install_tracer(None)


class TestAdminSlowQueries:
    def test_rpc_returns_retained_statements(self, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            client.create("sq-lfn", "sq-pfn")
            payload = client.slow_queries(limit=50)
        finally:
            client.close()
        assert payload["enabled"] is True
        assert payload["stats"]["retained"] > 0
        classes = {q["statement_class"] for q in payload["queries"]}
        assert "insert:t_lfn" in classes
        # Normalized SQL: literals are replaced, so no client values leak.
        assert all("sq-lfn" not in q["sql"] for q in payload["queries"])

    def test_profiling_disabled_reports_enabled_false(self, make_server):
        server = make_server(ServerRole.BOTH, profile_queries=False)
        client = connect(server.config.name)
        try:
            client.create("off-lfn", "off-pfn")
            payload = client.slow_queries()
        finally:
            client.close()
        assert payload["enabled"] is False
        assert payload["queries"] == []

    def test_limit_caps_returned_queries(self, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            for i in range(5):
                client.create(f"lim-{i}", f"pfn-{i}")
            payload = client.slow_queries(limit=2)
        finally:
            client.close()
        assert len(payload["queries"]) == 2

    def test_entries_carry_rpc_span_id(self, traced, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            client.create("span-lfn", "span-pfn")
            payload = client.slow_queries(limit=200)
        finally:
            client.close()
        handle_span_ids = {
            s["span_id"]
            for s in traced.to_dict(limit=None)["spans"]
            if s["name"] == "rpc.handle"
        }
        linked = [
            q for q in payload["queries"]
            if q["statement_class"] == "insert:t_lfn"
        ]
        assert linked, "no insert statements retained"
        # The enclosing rpc.handle span (not the sql.execute child) is
        # what the entry links to, so the slowlog joins to `rls trace`.
        assert any(q["span_id"] in handle_span_ids for q in linked)

    def test_profiles_attribute_dead_tuples(self, make_server):
        server = make_server(
            ServerRole.LRC, backend="postgresql", slow_query_threshold=0.0
        )
        client = connect(server.config.name)
        try:
            for _ in range(3):
                client.create("churn", "pfn://churn")
                client.delete("churn", "pfn://churn")
            client.create("churn", "pfn://churn")
            payload = client.slow_queries(limit=500)
        finally:
            client.close()
        assert any(q["dead_index_hits"] > 0 for q in payload["queries"])


class TestSlowlogCLI:
    def test_table_output(self, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            client.create("cli-lfn", "cli-pfn")
        finally:
            client.close()
        code, output = run_cli(
            "slowlog", "--server", profiled_server.config.name
        )
        assert code == 0
        assert "query log" in output
        assert "insert:t_lfn" in output

    def test_json_output(self, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            client.create("cli-json", "cli-pfn")
        finally:
            client.close()
        code, output = run_cli(
            "slowlog", "--server", profiled_server.config.name, "--json"
        )
        assert code == 0
        payload = json.loads(output)
        assert payload["enabled"] is True and payload["queries"]

    def test_plans_flag_prints_operators(self, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            client.create("cli-plan", "cli-pfn")
            client.get_mappings("cli-plan")
        finally:
            client.close()
        code, output = run_cli(
            "slowlog", "--server", profiled_server.config.name, "--plans"
        )
        assert code == 0
        assert "drive: hash index lookup" in output

    def test_disabled_profiling_notice(self, make_server):
        server = make_server(ServerRole.BOTH, profile_queries=False)
        code, output = run_cli("slowlog", "--server", server.config.name)
        assert code == 0
        assert "profiling disabled" in output
        assert "no retained statements" in output


class TestExplainCLI:
    def test_explain_analyze_by_dsn(self, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            client.create("exp-lfn", "exp-pfn")
        finally:
            client.close()
        code, output = run_cli(
            "explain",
            profiled_server.dsn,
            "SELECT id FROM t_lfn WHERE name = 'exp-lfn'",
        )
        assert code == 0
        assert "drive: hash index lookup t_lfn(name)" in output
        assert "actual rows examined=1" in output
        assert "total: 1 rows in" in output

    def test_static_flag_skips_execution(self, profiled_server):
        code, output = run_cli(
            "explain",
            "--static",
            profiled_server.dsn,
            "SELECT id FROM t_lfn WHERE name = 'x'",
        )
        assert code == 0
        assert "drive: hash index lookup t_lfn(name)" in output
        assert "actual" not in output

    def test_existing_explain_prefix_respected(self, profiled_server):
        code, output = run_cli(
            "explain",
            profiled_server.dsn,
            "EXPLAIN SELECT id FROM t_lfn WHERE name = 'x';",
        )
        assert code == 0
        assert "actual" not in output


class TestGatewayQueries:
    def test_admin_queries_route(self, profiled_server):
        import urllib.request

        from repro.net.http_gateway import HTTPGateway

        client = connect(profiled_server.config.name)
        try:
            client.create("gw-lfn", "gw-pfn")
        finally:
            client.close()
        gw = HTTPGateway(profiled_server.config.name)
        try:
            with urllib.request.urlopen(
                f"{gw.url}/admin/queries?limit=3", timeout=10
            ) as response:
                assert response.status == 200
                body = json.loads(response.read().decode())
        finally:
            gw.close()
        assert body["enabled"] is True
        assert 0 < len(body["queries"]) <= 3
        assert all("statement_class" in q for q in body["queries"])


class TestPrincipalAttribution:
    """Satellite surfaces: slowlog and flight events say *who* asked."""

    def test_entries_carry_the_connection_principal(self, profiled_server):
        client = connect(profiled_server.config.name, principal="cms-prod")
        try:
            client.create("who-lfn", "who-pfn")
            payload = client.slow_queries(limit=50)
        finally:
            client.close()
        principals = {q.get("principal") for q in payload["queries"]}
        assert "cms-prod" in principals

    def test_anonymous_without_declared_principal(self, profiled_server):
        client = connect(profiled_server.config.name)
        try:
            client.create("anon-lfn", "anon-pfn")
            payload = client.slow_queries(limit=50)
        finally:
            client.close()
        # Client-issued statements account as anonymous; statements the
        # server runs outside any request (startup, updates) stay None.
        inserts = [
            q for q in payload["queries"]
            if q["statement_class"] == "insert:t_lfn"
        ]
        assert inserts
        assert {q.get("principal") for q in inserts} == {"anonymous"}

    def test_slowlog_cli_shows_who(self, profiled_server):
        client = connect(profiled_server.config.name, principal="cms-prod")
        try:
            client.create("who-cli", "who-pfn")
        finally:
            client.close()
        code, output = run_cli(
            "slowlog", "--server", profiled_server.config.name
        )
        assert code == 0
        assert "who=cms-prod" in output

    def test_flight_rpc_in_events_carry_principal(self, make_server):
        server = make_server(ServerRole.BOTH)
        client = connect(server.config.name, principal="cms-prod")
        try:
            client.create("fl-lfn", "fl-pfn")
            payload = client.flight(limit=50)
        finally:
            client.close()
        ins = [e for e in payload["events"] if e["kind"] == "rpc.in"]
        assert ins, payload["events"]
        assert any(
            e["data"].get("principal") == "cms-prod" for e in ins
        )
