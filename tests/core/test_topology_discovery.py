"""Topology builders (Giggle configurations) and robust discovery tests."""

import pytest

from repro.core import topology
from repro.core.discovery import ReplicaDiscovery
from repro.core.errors import MappingNotFoundError
from repro.core.membership import StaticMembership


def membership_for(deployment) -> StaticMembership:
    membership = StaticMembership()
    for server in deployment.servers:
        membership.register_local(server.config.name)
    return membership


class TestSingleRLI:
    def test_all_lrcs_feed_one_rli(self):
        with topology.single_rli("topo-single", num_lrcs=3) as dep:
            for i in range(3):
                client = dep.lrc_client(i)
                client.create(f"s-lfn{i}", f"pfn{i}")
                client.close()
            dep.push_all()
            rli = dep.rli_client()
            for i in range(3):
                assert rli.rli_query(f"s-lfn{i}") == [f"topo-single-lrc{i}"]
            assert len(rli.rli_lrc_list()) == 3
            rli.close()

    def test_bloom_variant(self):
        with topology.single_rli("topo-single-b", num_lrcs=2, bloom=True) as dep:
            client = dep.lrc_client(0)
            client.create("b-lfn", "p")
            client.close()
            dep.push_all()
            assert dep.rlis[0].rli.bloom_filter_count() == 2


class TestRedundant:
    def test_index_survives_rli_failure(self):
        with topology.redundant("topo-red", num_lrcs=2, num_rlis=3) as dep:
            client = dep.lrc_client(0)
            client.create("red-lfn", "p")
            client.close()
            dep.push_all()
            # Every RLI has the full index.
            for j in range(3):
                rli = dep.rli_client(j)
                assert rli.rli_query("red-lfn") == ["topo-red-lrc0"]
                rli.close()
            # Kill two RLIs; the third still answers.
            dep.rlis[0].stop()
            dep.rlis[1].stop()
            survivor = dep.rli_client(2)
            assert survivor.rli_query("red-lfn") == ["topo-red-lrc0"]
            survivor.close()


class TestPartitioned:
    def test_namespace_routed_to_matching_rli(self):
        partitions = [("runs", "^run/"), ("cal", "^cal/")]
        with topology.partitioned_by_namespace(
            "topo-part", num_lrcs=2, partitions=partitions
        ) as dep:
            client = dep.lrc_client(0)
            client.create("run/data1", "p1")
            client.create("cal/data2", "p2")
            client.close()
            dep.push_all()
            runs_rli = dep.rli_client(0)
            cal_rli = dep.rli_client(1)
            assert runs_rli.rli_query("run/data1") == ["topo-part-lrc0"]
            with pytest.raises(MappingNotFoundError):
                runs_rli.rli_query("cal/data2")
            assert cal_rli.rli_query("cal/data2") == ["topo-part-lrc0"]
            runs_rli.close()
            cal_rli.close()


class TestFullyConnected:
    def test_mesh_answers_anywhere(self):
        with topology.fully_connected("topo-mesh", num_nodes=3) as dep:
            client = dep.lrc_client(1)
            client.create("mesh-lfn", "p")
            client.close()
            dep.push_all()
            for i in range(3):
                rli = dep.rli_client(i)
                assert rli.rli_query("mesh-lfn") == ["topo-mesh-node1"]
                rli.close()


class TestHierarchical:
    def test_root_aggregates_leaves(self):
        with topology.hierarchical(
            "topo-tree", num_lrcs_per_leaf=2, num_leaves=2,
            forward_interval=1e9,  # forward manually via push_all
        ) as dep:
            # lrcs: leaf0-lrc0, leaf0-lrc1, leaf1-lrc0, leaf1-lrc1
            client = dep.lrc_client(3)
            client.create("tree-lfn", "p")
            client.close()
            dep.push_all()
            root = dep.rli_client(0)  # root is first
            assert root.rli_query("tree-lfn") == ["topo-tree-leaf1-lrc1"]
            root.close()


class TestReplicaDiscovery:
    def test_discovers_across_sites(self):
        with topology.single_rli("disc", num_lrcs=3) as dep:
            for i in (0, 2):
                client = dep.lrc_client(i)
                client.create("shared-lfn", f"pfn-site{i}")
                client.close()
            dep.push_all()
            discovery = ReplicaDiscovery(
                membership_for(dep), rli_names=["disc-rli"]
            )
            result = discovery.discover("shared-lfn")
            assert sorted(result.replicas) == ["pfn-site0", "pfn-site2"]
            assert result.false_candidates == []
            assert set(result.by_lrc) == {"disc-lrc0", "disc-lrc2"}

    def test_recovers_from_stale_rli_pointer(self):
        with topology.single_rli("disc-stale", num_lrcs=2) as dep:
            for i in range(2):
                client = dep.lrc_client(i)
                client.create("volatile", f"pfn{i}")
                client.close()
            dep.push_all()
            # Delete from lrc0 but do not push: RLI now stale.
            client = dep.lrc_client(0)
            client.delete("volatile", "pfn0")
            client.close()
            discovery = ReplicaDiscovery(
                membership_for(dep), rli_names=["disc-stale-rli"]
            )
            result = discovery.discover("volatile")
            assert result.replicas == ["pfn1"]
            assert result.false_candidates == ["disc-stale-lrc0"]

    def test_tolerates_dead_lrc(self):
        with topology.single_rli("disc-dead", num_lrcs=2) as dep:
            for i in range(2):
                client = dep.lrc_client(i)
                client.create("half-dead", f"pfn{i}")
                client.close()
            dep.push_all()
            dep.lrcs[0].stop()
            discovery = ReplicaDiscovery(
                membership_for(dep), rli_names=["disc-dead-rli"]
            )
            result = discovery.discover("half-dead")
            assert result.replicas == ["pfn1"]
            assert result.unreachable == ["disc-dead-lrc0"]

    def test_discover_any_and_missing(self):
        with topology.single_rli("disc-any", num_lrcs=1) as dep:
            client = dep.lrc_client(0)
            client.create("exists", "pfn")
            client.close()
            dep.push_all()
            discovery = ReplicaDiscovery(
                membership_for(dep), rli_names=["disc-any-rli"]
            )
            assert discovery.discover_any("exists") == "pfn"
            with pytest.raises(MappingNotFoundError):
                discovery.discover_any("missing")

    def test_bulk_discovery(self):
        with topology.single_rli("disc-bulk", num_lrcs=1) as dep:
            client = dep.lrc_client(0)
            client.bulk_create([(f"bk{i}", f"p{i}") for i in range(5)])
            client.close()
            dep.push_all()
            discovery = ReplicaDiscovery(
                membership_for(dep), rli_names=["disc-bulk-rli"]
            )
            results = discovery.discover_bulk(["bk0", "bk3", "nope"])
            assert results["bk0"].replicas == ["p0"]
            assert results["bk3"].replicas == ["p3"]
            assert not results["nope"].found

    def test_requires_rli(self):
        with pytest.raises(ValueError):
            ReplicaDiscovery(StaticMembership(), rli_names=[])

    def test_merges_candidates_from_multiple_rlis(self):
        with topology.redundant("disc-multi", num_lrcs=2, num_rlis=2,
                                bloom=False) as dep:
            client = dep.lrc_client(1)
            client.create("multi-lfn", "pfn-multi")
            client.close()
            dep.push_all()
            discovery = ReplicaDiscovery(
                membership_for(dep),
                rli_names=["disc-multi-rli0", "disc-multi-rli1"],
            )
            result = discovery.discover("multi-lfn")
            assert result.replicas == ["pfn-multi"]
            # One RLI dying does not break discovery.
            dep.rlis[0].stop()
            result = discovery.discover("multi-lfn")
            assert result.replicas == ["pfn-multi"]
