"""Reliable soft-state delivery: per-target backlog, health, and redelivery.

The scenario the paper leaves implicit — "what happens when an update push
fails?" — answered the soft-state way: nothing is lost, the target is
marked unhealthy, and ``tick()`` redelivers with backoff until the RLI
converges.
"""

import pytest

from repro.core.lrc import LocalReplicaCatalog
from repro.core.rli import ReplicaLocationIndex
from repro.core.updates import (
    DirectSink,
    UpdateManager,
    UpdatePolicy,
    UpdateThread,
)
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.net.retry import RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.testing import FailureSchedule, FlakySink
from repro.testing.faults import NullSink


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class RecordingSink:
    def __init__(self):
        self.full = []
        self.incremental = []
        self.bloom = []

    def full_update(self, lrc_name, lfns):
        self.full.append((lrc_name, list(lfns)))

    def incremental_update(self, lrc_name, added, removed):
        self.incremental.append((lrc_name, list(added), list(removed)))

    def bloom_update(self, lrc_name, bitmap, num_bits, num_hashes, approx_entries):
        self.bloom.append((lrc_name, bitmap, num_bits, num_hashes, approx_entries))


def make_lrc(name="lrcA"):
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "lrc"), name=name)
    lrc.init_schema()
    return lrc


def make_rli(name="rli1"):
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    rli = ReplicaLocationIndex(Connection(engine, "r"), name=name)
    rli.init_schema()
    return rli


#: Deterministic nominal backoff: rng()=0.5 cancels the jitter exactly.
NOMINAL_RNG = lambda: 0.5  # noqa: E731

#: Retry curve used throughout: 2s, then 4s, then 8s ... capped at 120s.
RETRY = RetryPolicy(backoff_base=2.0, backoff_multiplier=2.0, backoff_max=120.0)


def make_manager(lrc, resolver, metrics=None):
    clock = FakeClock()
    policy = UpdatePolicy(
        immediate_interval=30.0,
        immediate_count_threshold=100,
        full_interval=600.0,
        retry=RETRY,
    )
    manager = UpdateManager(
        lrc, resolver, policy=policy, clock=clock, metrics=metrics,
        rng=NOMINAL_RNG,
    )
    return manager, clock


class TestIncrementalFailurePreservesPending:
    def test_failed_push_keeps_changes_in_target_backlog(self):
        lrc = make_lrc()
        sink = FlakySink(NullSink(), FailureSchedule.always())
        manager, _ = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("a", "p1")
        lrc.create_mapping("b", "p2")
        flushed = manager.send_incremental_update()
        assert flushed == 2  # the flush still drained the global delta
        health = manager.target_health()["rli1"]
        assert not health["healthy"]
        assert health["backlog"] == 2
        assert "FaultInjected" in health["last_error"]
        assert manager.stats.errors == 1
        assert sink.incremental == []  # nothing actually delivered

    def test_next_flush_delivers_backlog_plus_new_changes(self):
        lrc = make_lrc()
        sink = FlakySink(NullSink(), FailureSchedule.pattern("F."))
        manager, clock = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("a", "p1")
        manager.send_incremental_update()  # fails, "a" re-queued
        lrc.create_mapping("b", "p2")
        clock.now += 200.0  # past the target's backoff
        manager.send_incremental_update()  # succeeds
        assert sink.incremental == [("lrcA", ["a", "b"], [])]
        assert manager.target_health()["rli1"]["backlog"] == 0
        assert manager.target_health()["rli1"]["healthy"]

    def test_requeue_never_clobbers_newer_change(self):
        """An LFN deleted after its failed 'add' push must stay deleted."""
        lrc = make_lrc()
        sink = FlakySink(NullSink(), FailureSchedule.pattern("F."))
        manager, clock = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("x", "p")
        manager.send_incremental_update()  # push of add(x) fails
        lrc.delete_mapping("x", "p")  # newer intent: x is gone
        clock.now += 200.0
        manager.send_incremental_update()
        _, added, removed = sink.incremental[0]
        assert added == []
        assert removed == ["x"]

    def test_failure_does_not_raise(self):
        lrc = make_lrc()
        sink = FlakySink(NullSink(), FailureSchedule.always())
        manager, _ = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("a", "p")
        # Soft-state semantics: incremental delivery failure is absorbed,
        # never raised to the mutation path.
        manager.send_incremental_update()

    def test_one_failing_target_does_not_affect_others(self):
        lrc = make_lrc()
        good = RecordingSink()
        bad = FlakySink(NullSink(), FailureSchedule.always())
        sinks = {"good": good, "bad": bad}
        manager, _ = make_manager(lrc, lambda name: sinks[name])
        lrc.add_rli("good")
        lrc.add_rli("bad")
        lrc.create_mapping("a", "p")
        manager.send_incremental_update()
        assert good.incremental == [("lrcA", ["a"], [])]
        health = manager.target_health()
        assert health["good"]["healthy"]
        assert not health["bad"]["healthy"]
        assert health["bad"]["backlog"] == 1


class TestTickRedelivery:
    def test_backoff_schedule_between_retries(self):
        lrc = make_lrc()
        sink = FlakySink(NullSink(), FailureSchedule.always())
        manager, clock = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("a", "p")
        clock.now = 31.0
        assert manager.tick() == ["incremental"]  # fails; backoff = 2s
        assert manager.tick() == []  # still inside the backoff window
        clock.now = 33.5
        assert manager.tick() == ["retry:rli1"]  # fails again; backoff = 4s
        clock.now = 35.0
        assert manager.tick() == []  # 4s backoff not yet expired
        clock.now = 38.0
        assert manager.tick() == ["retry:rli1"]
        assert manager.stats.retries == 2

    def test_full_failure_marks_needs_full_and_retries_full(self):
        lrc = make_lrc()
        schedule = FailureSchedule.pattern("F.")
        sink = FlakySink(NullSink(), schedule)
        manager, clock = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("a", "p")
        with pytest.raises(Exception):
            manager.send_full_update()  # explicit trigger still raises
        health = manager.target_health()["rli1"]
        assert health["needs_full"] and not health["healthy"]
        clock.now += 200.0
        assert manager.tick() == ["retry:rli1"]
        assert len(sink.full) == 1  # the retry re-sent a FULL, not a delta
        assert manager.target_health()["rli1"]["healthy"]

    def test_unregistered_target_dropped_from_retry_loop(self):
        lrc = make_lrc()
        sink = FlakySink(NullSink(), FailureSchedule.always())
        manager, clock = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("a", "p")
        manager.send_incremental_update()
        lrc.remove_rli("rli1")
        clock.now += 200.0
        assert manager.tick() == []
        assert "rli1" not in manager.target_health()


class TestAcceptanceEndToEnd:
    def test_rli_failing_two_of_three_pushes_converges(self):
        """ISSUE acceptance: with a scripted FF. failure schedule, no
        pending change is lost, the RLI converges to the correct LFN set
        after retries, and updates.retries / updates.errors reflect the
        schedule."""
        metrics = MetricsRegistry()
        lrc = make_lrc()
        rli = make_rli()
        schedule = FailureSchedule.pattern("FF.")
        sink = FlakySink(DirectSink(rli), schedule)
        manager, clock = make_manager(lrc, lambda name: sink, metrics=metrics)
        lrc.add_rli("rli1")
        for i in range(3):
            lrc.create_mapping(f"lfn{i}", f"pfn{i}")

        clock.now = 31.0
        assert manager.tick() == ["incremental"]  # push 1: fails
        clock.now = 33.5  # past 2s backoff
        assert manager.tick() == ["retry:rli1"]  # push 2: fails
        clock.now = 38.0  # past 4s backoff
        assert manager.tick() == ["retry:rli1"]  # push 3: delivered

        # Convergence: the RLI knows every LFN, nothing was lost.
        for i in range(3):
            assert rli.query(f"lfn{i}") == ["lrcA"]
        assert sink.incremental == [("lrcA", ["lfn0", "lfn1", "lfn2"], [])]
        health = manager.target_health()["rli1"]
        assert health["healthy"] and health["backlog"] == 0

        # Counters reflect the schedule: 2 failures, 2 redeliveries.
        assert manager.stats.errors == 2
        assert manager.stats.retries == 2
        snap = metrics.snapshot()
        assert snap.counters["updates.errors{kind=incremental}"] == 2
        assert snap.counters["updates.retries"] == 2
        assert snap.gauges["updates.target_healthy{target=rli1}"] == 1.0
        assert snap.gauges["updates.targets_unhealthy"] == 0.0
        assert snap.gauges["updates.retry_backlog"] == 0.0

    def test_dead_then_recovered_rli_heals_via_retries(self):
        """A target down for several ticks converges once it comes back."""
        lrc = make_lrc()
        rli = make_rli()
        schedule = FailureSchedule.fail_first(4)
        sink = FlakySink(DirectSink(rli), schedule)
        manager, clock = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1")
        lrc.create_mapping("a", "p1")
        clock.now = 31.0
        manager.tick()
        # Keep ticking far past every backoff until the schedule recovers.
        for _ in range(10):
            clock.now += 130.0
            manager.tick()
        assert rli.query("a") == ["lrcA"]
        assert manager.target_health()["rli1"]["healthy"]
        assert manager.stats.retries >= 4


class TestStatsAccounting:
    def test_names_sent_counts_partition_filtered_names(self):
        """names_sent must count what was actually sent per target, not
        the unfiltered delta times the number of targets."""
        lrc = make_lrc()
        sinks = {}

        def resolver(name):
            return sinks.setdefault(name, RecordingSink())

        manager, _ = make_manager(lrc, resolver)
        lrc.add_rli("rli-run1", patterns=["^run1/"])
        lrc.add_rli("rli-all")
        lrc.create_mapping("run1/x", "p1")
        lrc.create_mapping("run9/y", "p2")
        manager.send_incremental_update()
        # rli-run1 got 1 name, rli-all got 2: 3 sent in total — not 4.
        assert manager.stats.names_sent == 3

    def test_full_update_names_sent_filtered(self):
        lrc = make_lrc()
        sinks = {}

        def resolver(name):
            return sinks.setdefault(name, RecordingSink())

        manager, _ = make_manager(lrc, resolver)
        lrc.add_rli("rli-run1", patterns=["^run1/"])
        lrc.create_mapping("run1/x", "p1")
        lrc.create_mapping("run9/y", "p2")
        manager.send_full_update()
        assert manager.stats.names_sent == 1


class TestUpdateThreadErrors:
    def test_tick_exception_counted_not_swallowed(self):
        metrics = MetricsRegistry()
        lrc = make_lrc()
        manager, _ = make_manager(lrc, lambda name: NullSink(), metrics=metrics)
        thread = UpdateThread(manager, poll_interval=0.01)

        calls = {"n": 0}

        def exploding_tick():
            calls["n"] += 1
            raise RuntimeError("tick blew up")

        manager.tick = exploding_tick
        thread.start()
        try:
            import time

            deadline = time.monotonic() + 5.0
            while calls["n"] < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            thread.stop()
        assert calls["n"] >= 2  # the daemon survived the first failure
        assert thread.errors >= 2
        assert "RuntimeError" in thread.last_error
        key = "updates.errors{error=RuntimeError,kind=tick}"
        assert metrics.snapshot().counters[key] >= 2


class TestBloomRedelivery:
    def test_failed_bloom_push_resent_on_retry(self):
        lrc = make_lrc()
        schedule = FailureSchedule.pattern("F.")
        sink = FlakySink(NullSink(), schedule)
        manager, clock = make_manager(lrc, lambda name: sink)
        lrc.add_rli("rli1", bloom=True)
        manager.rebuild_bloom()
        lrc.create_mapping("a", "p")
        manager.send_incremental_update()  # bloom push fails
        assert not manager.target_health()["rli1"]["healthy"]
        clock.now += 200.0
        assert manager.tick() == ["retry:rli1"]
        assert len(sink.bloom) == 1
        assert manager.target_health()["rli1"]["healthy"]
