"""UpdateManager tests: full / incremental / bloom / partitioned updates."""

import pytest

from repro.core.errors import UpdateTargetError
from repro.core.lrc import LocalReplicaCatalog
from repro.core.partition import PartitionRouter
from repro.core.rli import ReplicaLocationIndex
from repro.core.updates import DirectSink, UpdateManager, UpdatePolicy
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class RecordingSink:
    """Sink that records every update it receives."""

    def __init__(self):
        self.full = []
        self.incremental = []
        self.bloom = []

    def full_update(self, lrc_name, lfns):
        self.full.append((lrc_name, list(lfns)))

    def incremental_update(self, lrc_name, added, removed):
        self.incremental.append((lrc_name, list(added), list(removed)))

    def bloom_update(self, lrc_name, bitmap, num_bits, num_hashes, approx_entries):
        self.bloom.append((lrc_name, bitmap, num_bits, num_hashes, approx_entries))


@pytest.fixture
def setup():
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "lrc"), name="lrcA")
    lrc.init_schema()
    sinks: dict[str, RecordingSink] = {}

    def resolver(name):
        return sinks.setdefault(name, RecordingSink())

    clock = FakeClock()
    policy = UpdatePolicy(
        immediate_interval=30.0,
        immediate_count_threshold=5,
        full_interval=600.0,
        bloom_expected_entries=1024,
    )
    manager = UpdateManager(lrc, resolver, policy=policy, clock=clock)
    return lrc, manager, sinks, clock


class TestFullUpdates:
    def test_full_update_sends_all_lfns(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1")
        lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(5)])
        manager.send_full_update()
        assert len(sinks["rli1"].full) == 1
        name, lfns = sinks["rli1"].full[0]
        assert name == "lrcA" and sorted(lfns) == [f"l{i}" for i in range(5)]

    def test_no_targets_raises(self, setup):
        _, manager, _, _ = setup
        with pytest.raises(UpdateTargetError):
            manager.send_full_update()

    def test_full_update_clears_pending(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1")
        lrc.create_mapping("x", "p")
        assert manager.pending_changes() == (1, 0)
        manager.send_full_update()
        assert manager.pending_changes() == (0, 0)

    def test_stats_updated(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1")
        lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(3)])
        manager.send_full_update()
        assert manager.stats.full_updates == 1
        assert manager.stats.names_sent == 3


class TestIncrementalUpdates:
    def test_deltas_sent(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1")
        lrc.create_mapping("added", "p")
        lrc.create_mapping("gone", "p2")
        lrc.delete_mapping("gone", "p2")
        flushed = manager.send_incremental_update()
        assert flushed == 2
        name, added, removed = sinks["rli1"].incremental[0]
        assert added == ["added"] and removed == ["gone"]

    def test_add_then_delete_collapses(self, setup):
        """An LFN created and deleted between flushes nets out to removed."""
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1")
        lrc.create_mapping("temp", "p")
        lrc.delete_mapping("temp", "p")
        manager.send_incremental_update()
        _, added, removed = sinks["rli1"].incremental[0]
        assert added == [] and removed == ["temp"]

    def test_empty_flush_sends_nothing(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1")
        assert manager.send_incremental_update() == 0
        assert "rli1" not in sinks or sinks["rli1"].incremental == []


class TestBloomUpdates:
    def test_bloom_target_receives_bitmap(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1", bloom=True)
        lrc.bulk_create([(f"l{i}", f"p{i}") for i in range(10)])
        manager.rebuild_bloom()
        manager.send_full_update()
        assert len(sinks["rli1"].bloom) == 1
        _, bitmap, num_bits, num_hashes, entries = sinks["rli1"].bloom[0]
        assert len(bitmap) * 8 == num_bits
        assert num_hashes == 3
        assert entries == 10

    def test_bloom_built_lazily(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1", bloom=True)
        lrc.create_mapping("x", "p")
        manager.send_full_update()  # triggers rebuild internally
        assert len(sinks["rli1"].bloom) == 1

    def test_bloom_filter_tracks_changes(self, setup):
        """Incremental maintenance: the pushed bitmap reflects live catalog
        state, verified end-to-end through a real RLI."""
        lrc, manager, _, _ = setup
        engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        rli = ReplicaLocationIndex(Connection(engine, "r"), name="rli-real")
        rli.init_schema()
        sink = DirectSink(rli)
        manager.sink_resolver = lambda name: sink
        lrc.add_rli("rli-real", bloom=True)
        lrc.create_mapping("keep", "p1")
        lrc.create_mapping("drop", "p2")
        manager.rebuild_bloom()
        lrc.delete_mapping("drop", "p2")
        manager.send_full_update()
        assert rli.query("keep") == ["lrcA"]
        with pytest.raises(Exception):
            rli.query("drop")

    def test_generation_time_recorded(self, setup):
        lrc, manager, _, _ = setup
        lrc.create_mapping("x", "p")
        elapsed = manager.rebuild_bloom()
        assert elapsed > 0
        assert manager.stats.bloom_generation_time == elapsed

    def test_incremental_flush_sends_bloom_to_bloom_targets(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli1", bloom=True)
        manager.rebuild_bloom()
        lrc.create_mapping("x", "p")
        manager.send_incremental_update()
        assert len(sinks["rli1"].bloom) == 1


class TestPartitioning:
    def test_full_update_filtered_by_pattern(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli-run1", patterns=["^run1/"])
        lrc.add_rli("rli-run2", patterns=["^run2/"])
        lrc.add_rli("rli-all")
        lrc.bulk_create(
            [("run1/a", "p1"), ("run1/b", "p2"), ("run2/c", "p3")]
        )
        manager.send_full_update()
        assert sorted(sinks["rli-run1"].full[0][1]) == ["run1/a", "run1/b"]
        assert sinks["rli-run2"].full[0][1] == ["run2/c"]
        assert len(sinks["rli-all"].full[0][1]) == 3

    def test_incremental_filtered_by_pattern(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli-run1", patterns=["^run1/"])
        lrc.create_mapping("run1/x", "p")
        lrc.create_mapping("run9/y", "p2")
        manager.send_incremental_update()
        _, added, _ = sinks["rli-run1"].incremental[0]
        assert added == ["run1/x"]

    def test_bloom_with_patterns_builds_subset_filter(self, setup):
        lrc, manager, sinks, _ = setup
        lrc.add_rli("rli-b", bloom=True, patterns=["^run1/"])
        lrc.bulk_create([("run1/a", "p1"), ("run2/b", "p2")])
        manager.send_full_update()
        _, bitmap, nbits, k, entries = sinks["rli-b"].bloom[0]
        from repro.core.bloom import BloomFilter, BloomParameters

        bf = BloomFilter.from_bytes(bitmap, BloomParameters(nbits, k))
        assert "run1/a" in bf
        assert "run2/b" not in bf


class TestScheduling:
    def test_incremental_due_after_interval(self, setup):
        lrc, manager, sinks, clock = setup
        lrc.add_rli("rli1")
        lrc.create_mapping("x", "p")
        assert manager.due_actions() == []
        clock.now += 31.0
        assert manager.due_actions() == ["incremental"]

    def test_incremental_due_after_count_threshold(self, setup):
        lrc, manager, sinks, clock = setup
        lrc.add_rli("rli1")
        for i in range(5):  # threshold is 5
            lrc.create_mapping(f"x{i}", f"p{i}")
        assert manager.due_actions() == ["incremental"]

    def test_full_due_after_full_interval(self, setup):
        lrc, manager, _, clock = setup
        lrc.add_rli("rli1")
        clock.now += 601.0
        assert manager.due_actions() == ["full"]

    def test_nothing_due_without_changes(self, setup):
        lrc, manager, _, clock = setup
        lrc.add_rli("rli1")
        clock.now += 31.0
        assert manager.due_actions() == []

    def test_tick_performs_due_actions(self, setup):
        lrc, manager, sinks, clock = setup
        lrc.add_rli("rli1")
        lrc.create_mapping("x", "p")
        clock.now += 31.0
        assert manager.tick() == ["incremental"]
        assert sinks["rli1"].incremental

    def test_immediate_mode_disabled(self, setup):
        lrc, manager, _, clock = setup
        manager.policy.immediate_mode = False
        lrc.add_rli("rli1")
        lrc.create_mapping("x", "p")
        clock.now += 100.0
        assert manager.due_actions() == []


class TestPartitionRouter:
    def test_no_patterns_matches_everything(self):
        from repro.core.lrc import RLITarget

        router = PartitionRouter([RLITarget("rli")])
        assert router.matches(RLITarget("rli"), "anything")

    def test_search_semantics(self):
        from repro.core.lrc import RLITarget

        target = RLITarget("rli", patterns=("run1",))
        router = PartitionRouter([target])
        assert router.matches(target, "data/run1/file")  # substring match

    def test_route(self):
        from repro.core.lrc import RLITarget

        t1 = RLITarget("a", patterns=("^x",))
        t2 = RLITarget("b", patterns=("^y",))
        t3 = RLITarget("c")
        router = PartitionRouter([t1, t2, t3])
        assert [t.name for t in router.route("xfile")] == ["a", "c"]

    def test_filter_names(self):
        from repro.core.lrc import RLITarget

        target = RLITarget("a", patterns=("^x", "^y"))
        router = PartitionRouter([target])
        assert router.filter_names(target, ["x1", "y1", "z1"]) == ["x1", "y1"]


class TestPartitionRouterFastPath:
    """The compiled-alternation route plan must be invisible: identical
    answers to the per-pattern path for every pattern class."""

    LFNS = [
        "site0/dir1/run42",
        "site1/dir2/run7",
        "elsewhere/dir3/run9",
        "run42",
        "xyy",
        "abab",
        "",
    ]

    def test_alternation_equivalent_to_per_pattern(self):
        from repro.core.lrc import RLITarget

        targets = [
            RLITarget("a", patterns=("^site0/", "run4[0-9]$")),
            RLITarget("b", patterns=("^site1/", "^elsewhere/")),
            RLITarget("c", patterns=("dir[12]/",)),
            RLITarget("all", patterns=()),
        ]
        router = PartitionRouter(targets)
        for lfn in self.LFNS:
            fast = {t.name for t in router.route(lfn)}
            slow = {t.name for t in targets if router.matches(t, lfn)}
            assert fast == slow, (lfn, fast, slow)

    def test_backreference_patterns_fall_back(self):
        """Group numbers shift inside a joined alternation, so a pattern
        with a backreference must skip the combined plan — and still
        route correctly."""
        from repro.core.lrc import RLITarget
        from repro.core.partition import _combine

        assert _combine([r"(ab)\1"]) is None
        assert _combine([r"(?P<d>x)(?P=d)"]) is None
        assert _combine(["^plain", "no-backref"]) is not None

        target = RLITarget("br", patterns=(r"(ab)\1",))
        router = PartitionRouter([target, RLITarget("plain", patterns=("^x",))])
        assert [t.name for t in router.route("abab")] == ["br"]
        assert [t.name for t in router.route("xyy")] == ["plain"]
        assert router.filter_names(target, ["abab", "abba"]) == ["abab"]

    def test_match_all_target_in_route_and_filter(self):
        from repro.core.lrc import RLITarget

        everything = RLITarget("everything")
        scoped = RLITarget("scoped", patterns=("^site0/",))
        router = PartitionRouter([everything, scoped])
        assert [t.name for t in router.route("unrelated")] == ["everything"]
        assert {t.name for t in router.route("site0/f")} == {
            "everything",
            "scoped",
        }
        names = ["site0/a", "other/b"]
        assert router.filter_names(everything, names) == names

    def test_combined_pattern_matches_iff_any_member_matches(self):
        import re

        from repro.core.partition import _combine

        patterns = ["^a+b", "c{2,3}$", "mid.dle"]
        combined = _combine(patterns)
        singles = [re.compile(p) for p in patterns]
        probes = ["aab", "xcc", "xcccc", "midXdle", "middle", "none", "ab", ""]
        for probe in probes:
            assert bool(combined.search(probe)) == any(
                p.search(probe) for p in singles
            ), probe


class _FakePipelinedClient:
    """Records calls; mimics the RPCClient pipelined surface."""

    def __init__(self, pipelined=True):
        self.pipelined = pipelined
        self.sync_calls = []
        self.async_calls = []
        self.drains = 0

    def call(self, method, *args):
        self.sync_calls.append((method, args))

    def call_async(self, method, *args):
        self.async_calls.append((method, args))

        class _Done:
            done = True

            @staticmethod
            def result():
                return None

        return _Done()

    def drain(self):
        self.drains += 1


class TestRPCSinkChunking:
    def test_small_update_single_call(self):
        from repro.core.updates import RPCSink

        client = _FakePipelinedClient()
        sink = RPCSink(client, chunk_size=10)
        sink.incremental_update("lrc", ["a", "b"], ["c"])
        assert client.sync_calls == [
            ("rli_incremental_update", ("lrc", ["a", "b"], ["c"]))
        ]
        assert client.async_calls == [] and client.drains == 0

    def test_large_update_chunks_and_drains_once(self):
        from repro.core.updates import RPCSink

        client = _FakePipelinedClient()
        sink = RPCSink(client, chunk_size=10)
        added = [f"a{i}" for i in range(25)]
        removed = [f"r{i}" for i in range(12)]
        sink.incremental_update("lrc", added, removed)
        assert client.sync_calls == []
        assert client.drains == 1
        # 3 add chunks then 2 removal chunks, covering every element in
        # order with nothing dropped or duplicated.
        adds = [c for c in client.async_calls if c[1][1]]
        rems = [c for c in client.async_calls if c[1][2]]
        assert len(adds) == 3 and len(rems) == 2
        assert [x for c in adds for x in c[1][1]] == added
        assert [x for c in rems for x in c[1][2]] == removed
        assert all(c[0] == "rli_incremental_update" for c in client.async_calls)
        assert all(c[1][0] == "lrc" for c in client.async_calls)

    def test_non_pipelined_client_never_chunks(self):
        from repro.core.updates import RPCSink

        client = _FakePipelinedClient(pipelined=False)
        sink = RPCSink(client, chunk_size=2)
        added = [f"a{i}" for i in range(7)]
        sink.incremental_update("lrc", added, [])
        assert client.sync_calls == [
            ("rli_incremental_update", ("lrc", added, []))
        ]
        assert client.async_calls == []

    def test_full_update_never_chunked(self):
        from repro.core.updates import RPCSink

        client = _FakePipelinedClient()
        sink = RPCSink(client, chunk_size=2)
        sink.full_update("lrc", [f"l{i}" for i in range(9)])
        assert len(client.sync_calls) == 1
        assert client.async_calls == []
