"""MySQL- and PostgreSQL-flavoured engine behaviour (paper §5.1 / §5.2)."""

import pytest

from repro.db.mysql_engine import MySQLEngine
from repro.db.postgres_engine import PostgresEngine


def _create(db):
    db.execute(
        "CREATE TABLE t (id INT NOT NULL AUTO_INCREMENT, "
        "name VARCHAR(100) NOT NULL, PRIMARY KEY (id), UNIQUE (name))"
    )


class TestMySQLFlushPolicy:
    def test_flush_enabled_pays_sync_per_insert(self):
        slept = []
        from repro.db.wal import InMemoryLogDevice, WriteAheadLog

        device = InMemoryLogDevice(sync_latency=0.011, sleep=slept.append)
        db = MySQLEngine(flush_on_commit=True, device=device)
        _create(db)
        for i in range(4):
            db.execute("INSERT INTO t (name) VALUES (?)", [f"n{i}"])
        assert len(slept) == 4

    def test_flush_disabled_skips_sync(self):
        slept = []
        from repro.db.wal import InMemoryLogDevice

        device = InMemoryLogDevice(sync_latency=0.011, sleep=slept.append)
        db = MySQLEngine(flush_on_commit=False, device=device)
        db.wal.max_buffered_records = 10_000
        db.wal.flush_interval = 1e9
        _create(db)
        for i in range(4):
            db.execute("INSERT INTO t (name) VALUES (?)", [f"n{i}"])
        assert slept == []

    def test_queries_never_pay_sync(self):
        """Figure 5's result: flush setting does not affect queries."""
        slept = []
        from repro.db.wal import InMemoryLogDevice

        device = InMemoryLogDevice(sync_latency=0.011, sleep=slept.append)
        db = MySQLEngine(flush_on_commit=True, device=device)
        _create(db)
        db.execute("INSERT INTO t (name) VALUES ('a')")
        sync_count = len(slept)
        for _ in range(10):
            db.execute("SELECT id FROM t WHERE name = 'a'")
        assert len(slept) == sync_count

    def test_toggle_flush(self):
        db = MySQLEngine(flush_on_commit=True, sync_latency=0.0)
        assert db.flush_on_commit
        db.set_flush_on_commit(False)
        assert not db.flush_on_commit

    def test_eager_storage_no_dead_tuples(self):
        db = MySQLEngine(sync_latency=0.0, flush_on_commit=False)
        _create(db)
        db.execute("INSERT INTO t (name) VALUES ('a')")
        db.execute("DELETE FROM t WHERE name = 'a'")
        assert db.table("t").dead_tuple_count == 0


class TestPostgresMVCC:
    def test_delete_leaves_dead_tuples(self, postgres):
        _create(postgres)
        for i in range(10):
            postgres.execute("INSERT INTO t (name) VALUES (?)", [f"n{i}"])
        postgres.execute("DELETE FROM t WHERE name LIKE 'n%'")
        assert postgres.dead_tuples()["t"] == 10

    def test_vacuum_reclaims(self, postgres):
        _create(postgres)
        for i in range(10):
            postgres.execute("INSERT INTO t (name) VALUES (?)", [f"n{i}"])
        postgres.execute("DELETE FROM t")
        assert postgres.vacuum("t") == 10
        assert postgres.dead_tuples()["t"] == 0

    def test_vacuum_all_tables(self, postgres):
        _create(postgres)
        postgres.execute("CREATE TABLE u (id INT, name VARCHAR(10))")
        postgres.execute("INSERT INTO t (name) VALUES ('a')")
        postgres.execute("INSERT INTO u (id, name) VALUES (1, 'b')")
        postgres.execute("DELETE FROM t")
        postgres.execute("DELETE FROM u")
        assert postgres.vacuum() == 2

    def test_sql_vacuum_statement(self, postgres):
        _create(postgres)
        postgres.execute("INSERT INTO t (name) VALUES ('a')")
        postgres.execute("DELETE FROM t")
        assert postgres.execute("VACUUM t").rowcount == 1

    def test_churn_cost_grows_until_vacuum(self, postgres):
        """The Figure 8 mechanism: add/delete churn accumulates dead index
        entries whose filtering cost grows, and VACUUM resets it."""
        _create(postgres)
        table = postgres.table("t")

        def churn(rounds):
            before = table.stats.dead_index_hits
            for i in range(rounds):
                postgres.execute("INSERT INTO t (name) VALUES ('hot')")
                postgres.execute("DELETE FROM t WHERE name = 'hot'")
            return table.stats.dead_index_hits - before

        first = churn(50)
        second = churn(50)  # dead entries from round one make this pricier
        assert second > first
        postgres.vacuum("t")
        third = churn(50)
        assert third <= second  # vacuum restored the cost

    def test_correctness_unaffected_by_dead_tuples(self, postgres):
        _create(postgres)
        for round_no in range(5):
            postgres.execute("INSERT INTO t (name) VALUES ('x')")
            postgres.execute("DELETE FROM t WHERE name = 'x'")
        postgres.execute("INSERT INTO t (name) VALUES ('x')")
        rows = postgres.execute("SELECT name FROM t").rows
        assert rows == [("x",)]
