"""Database engine tests: DDL, logged DML, recovery, stats."""

import pytest

from repro.db.engine import Database
from repro.db.errors import NoSuchTableError, TableExistsError
from repro.db.mysql_engine import MySQLEngine
from repro.db.schema import Column, TableSchema
from repro.db.types import INT, VARCHAR
from repro.db.wal import InMemoryLogDevice, WriteAheadLog


def schema(name="t"):
    return TableSchema(
        name,
        [
            Column("id", INT, nullable=False, autoincrement=True),
            Column("name", VARCHAR(50), nullable=False),
        ],
        primary_key=("id",),
        unique=[("name",)],
    )


class TestDDL:
    def test_create_and_lookup(self):
        db = Database()
        db.create_table(schema())
        assert db.has_table("t") and db.has_table("T")
        assert db.table_names() == ["t"]

    def test_duplicate_create_rejected(self):
        db = Database()
        db.create_table(schema())
        with pytest.raises(TableExistsError):
            db.create_table(schema())

    def test_drop(self):
        db = Database()
        db.create_table(schema())
        db.drop_table("t")
        assert not db.has_table("t")

    def test_drop_missing(self):
        with pytest.raises(NoSuchTableError):
            Database().drop_table("nope")


class TestLoggedDML:
    def make(self):
        wal = WriteAheadLog(InMemoryLogDevice(sync_latency=0.0), flush_on_commit=True)
        db = Database(wal=wal)
        db.create_table(schema())
        return db, wal

    def test_insert_logged(self):
        db, wal = self.make()
        db.insert_row("t", {"name": "a"})
        records = wal.records()
        assert len(records) == 1
        assert records[0].op_name == "INSERT"
        assert records[0].payload == (1, "a")

    def test_delete_logged_with_old_row(self):
        db, wal = self.make()
        rid, _ = db.insert_row("t", {"name": "a"})
        db.delete_row("t", rid)
        assert wal.records()[-1].op_name == "DELETE"

    def test_update_logged(self):
        db, wal = self.make()
        rid, _ = db.insert_row("t", {"name": "a"})
        db.update_row("t", rid, {"name": "b"})
        assert wal.records()[-1].op_name == "UPDATE"
        assert wal.records()[-1].payload[1] == "b"


class TestRecovery:
    def test_replay_reconstructs_state(self):
        source = MySQLEngine(flush_on_commit=True, sync_latency=0.0)
        source.execute(
            "CREATE TABLE t (id INT NOT NULL AUTO_INCREMENT, "
            "name VARCHAR(50) NOT NULL, PRIMARY KEY (id), UNIQUE (name))"
        )
        for n in ("a", "b", "c"):
            source.execute("INSERT INTO t (name) VALUES (?)", [n])
        source.execute("DELETE FROM t WHERE name = 'b'")
        source.execute("UPDATE t SET name = 'z' WHERE name = 'c'")

        # "Crash": rebuild from durable log into a fresh engine.
        fresh = Database("recovered")
        fresh.execute(
            "CREATE TABLE t (id INT NOT NULL AUTO_INCREMENT, "
            "name VARCHAR(50) NOT NULL, PRIMARY KEY (id), UNIQUE (name))"
        )
        applied = source.recover_into(fresh)
        assert applied >= 5
        names = sorted(r[0] for r in fresh.execute("SELECT name FROM t").rows)
        assert names == ["a", "z"]

    def test_unsynced_tail_lost(self):
        """With flush disabled, the un-synced tail does not survive."""
        source = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
        source.wal.max_buffered_records = 10_000
        source.wal.flush_interval = 1e9
        source.execute("CREATE TABLE t (id INT, name VARCHAR(50))")
        source.execute("INSERT INTO t (id, name) VALUES (1, 'durable')")
        source.checkpoint()
        source.execute("INSERT INTO t (id, name) VALUES (2, 'lost')")

        fresh = Database("recovered")
        fresh.execute("CREATE TABLE t (id INT, name VARCHAR(50))")
        source.recover_into(fresh)
        rows = fresh.execute("SELECT name FROM t").rows
        assert rows == [("durable",)]

    def test_recover_without_wal_is_noop(self):
        db = Database()  # no WAL
        other = Database()
        assert db.recover_into(other) == 0


class TestStats:
    def test_stats_counts_operations(self):
        db = Database()
        db.create_table(schema())
        db.insert_row("t", {"name": "a"})
        rid, _ = db.insert_row("t", {"name": "b"})
        db.delete_row("t", rid)
        stats = db.stats()["t"]
        assert stats["inserts"] == 2 and stats["deletes"] == 1
