"""EXPLAIN: the access plans the RLS relies on must actually be chosen."""

import pytest

from repro.db.errors import SQLSyntaxError
from repro.db.mysql_engine import MySQLEngine


@pytest.fixture
def db():
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    engine.execute(
        "CREATE TABLE t_lfn (id INT NOT NULL AUTO_INCREMENT, "
        "name VARCHAR(250) NOT NULL, ref INT, "
        "PRIMARY KEY (id), UNIQUE (name))"
    )
    engine.execute("CREATE INDEX lfn_pfx ON t_lfn (name) USING BTREE")
    engine.execute(
        "CREATE TABLE t_map (lfn_id INT NOT NULL, pfn_id INT NOT NULL, "
        "PRIMARY KEY (lfn_id, pfn_id))"
    )
    engine.execute("CREATE INDEX map_lfn ON t_map (lfn_id)")
    return engine


def plan(db, sql, params=()):
    return [r[0] for r in db.execute("EXPLAIN " + sql, params).rows]


class TestSelectPlans:
    def test_name_lookup_uses_hash_index(self, db):
        lines = plan(db, "SELECT id FROM t_lfn WHERE name = ?", ["x"])
        assert lines[0] == "drive: hash index lookup t_lfn(name)"

    def test_like_prefix_uses_ordered_index(self, db):
        lines = plan(db, "SELECT name FROM t_lfn WHERE name LIKE 'lfn%'")
        assert "ordered index prefix scan t_lfn(name)" in lines[0]
        assert "prefix='lfn'" in lines[0]

    def test_leading_wildcard_falls_back_to_scan(self, db):
        lines = plan(db, "SELECT name FROM t_lfn WHERE name LIKE '%fn'")
        # Empty prefix -> prefix scan over everything is still chosen
        # (prefix=''), which degenerates to a full ordered scan.
        assert "prefix=''" in lines[0] or "full scan" in lines[0]

    def test_unindexed_predicate_scans(self, db):
        lines = plan(db, "SELECT id FROM t_lfn WHERE ref = 5")
        assert lines[0] == "drive: full scan t_lfn + filter"

    def test_no_where_scans(self, db):
        lines = plan(db, "SELECT id FROM t_lfn")
        assert lines[0] == "drive: full scan t_lfn"

    def test_join_probes_hash_index(self, db):
        lines = plan(
            db,
            "SELECT m.pfn_id FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id WHERE l.name = ?",
            ["x"],
        )
        assert lines[1] == "join: t_map via hash probe on lfn_id"

    def test_join_without_index_scans(self, db):
        db.execute("CREATE TABLE loose (a INT, b INT)")
        lines = plan(
            db, "SELECT loose.b FROM t_lfn l JOIN loose ON l.ref = loose.a"
        )
        assert lines[1] == "join: loose via full scan"

    def test_sort_and_limit_reported(self, db):
        lines = plan(db, "SELECT name FROM t_lfn ORDER BY name LIMIT 3")
        assert "sort: name" in lines
        assert "limit: 3" in lines

    def test_in_list_probes_hash_index(self, db):
        lines = plan(
            db, "SELECT id FROM t_lfn WHERE name IN ('a', 'b', 'a')"
        )
        # Duplicate keys are de-duplicated before probing.
        assert lines[0] == "drive: hash index IN probe t_lfn(name) [2 keys]"

    def test_in_list_with_params(self, db):
        lines = plan(
            db, "SELECT id FROM t_lfn WHERE name IN (?, ?, ?)", ["a", "b", "c"]
        )
        assert lines[0] == "drive: hash index IN probe t_lfn(name) [3 keys]"

    def test_negated_in_list_falls_back_to_scan(self, db):
        lines = plan(db, "SELECT id FROM t_lfn WHERE name NOT IN ('a')")
        assert lines[0] == "drive: full scan t_lfn + filter"

    def test_in_list_on_unindexed_column_scans(self, db):
        lines = plan(db, "SELECT id FROM t_lfn WHERE ref IN (1, 2)")
        assert lines[0] == "drive: full scan t_lfn + filter"


class TestUpdateDeletePlans:
    def test_delete_by_key(self, db):
        lines = plan(db, "DELETE FROM t_lfn WHERE name = 'x'")
        assert lines == ["delete via hash index lookup t_lfn(name)"]

    def test_update_by_pk(self, db):
        lines = plan(db, "UPDATE t_lfn SET ref = 1 WHERE id = 7")
        assert lines == ["update via hash index lookup t_lfn(id)"]


class TestExplainAnalyze:
    """EXPLAIN ANALYZE executes the statement and reports actuals."""

    def fill(self, db, n=4):
        for i in range(n):
            db.execute(
                "INSERT INTO t_lfn (name, ref) VALUES (?, ?)", [f"lfn{i}", 1]
            )

    def analyze(self, db, sql, params=()):
        return [r[0] for r in db.execute("EXPLAIN ANALYZE " + sql, params).rows]

    def test_join_reports_probe_actuals(self, db):
        self.fill(db)
        db.execute("INSERT INTO t_map (lfn_id, pfn_id) VALUES (1, 10)")
        db.execute("INSERT INTO t_map (lfn_id, pfn_id) VALUES (1, 11)")
        lines = self.analyze(
            db,
            "SELECT m.pfn_id FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id WHERE l.name = 'lfn0'",
        )
        assert lines[0].startswith("drive: hash index lookup t_lfn(name)")
        assert lines[1].startswith("join: t_map via hash probe on lfn_id")
        assert "rows examined=2 returned=2" in lines[1]
        assert lines[-1].startswith("total: 2 rows in ")

    def test_like_prefix_reports_actuals(self, db):
        self.fill(db)
        lines = self.analyze(
            db, "SELECT name FROM t_lfn WHERE name LIKE 'lfn%'"
        )
        assert "ordered index prefix scan t_lfn(name)" in lines[0]
        assert "rows examined=4 returned=4" in lines[0]

    def test_in_list_probe_reports_actuals(self, db):
        self.fill(db)
        lines = self.analyze(
            db, "SELECT id FROM t_lfn WHERE name IN ('lfn1', 'lfn3', 'nope')"
        )
        assert lines[0].startswith(
            "drive: hash index IN probe t_lfn(name) [3 keys]"
        )
        assert "rows examined=2 returned=2" in lines[0]
        assert lines[-1].startswith("total: 2 rows in ")

    def test_sort_and_limit_report_row_reduction(self, db):
        self.fill(db)
        lines = self.analyze(
            db, "SELECT name FROM t_lfn ORDER BY name LIMIT 2"
        )
        sort_line = next(li for li in lines if li.startswith("sort:"))
        limit_line = next(li for li in lines if li.startswith("limit:"))
        assert "returned=4" in sort_line
        assert "rows examined=4 returned=2" in limit_line

    def test_analyze_runs_mutations(self, db):
        self.fill(db, n=2)
        lines = self.analyze(db, "DELETE FROM t_lfn WHERE name = 'lfn0'")
        assert db.execute("SELECT COUNT(*) FROM t_lfn").scalar() == 1
        assert any("returned=1" in li for li in lines)


class TestExplainErrors:
    def test_explain_insert_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("EXPLAIN INSERT INTO t_lfn (name) VALUES ('x')")

    def test_explain_does_not_mutate(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('keep', 1)")
        db.execute("EXPLAIN DELETE FROM t_lfn WHERE name = 'keep'")
        assert db.execute("SELECT COUNT(*) FROM t_lfn").scalar() == 1
