"""Hash and ordered index tests, including hypothesis properties."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.index import HashIndex, OrderedIndex


class TestHashIndex:
    def test_insert_lookup(self):
        idx = HashIndex("i", (0,))
        idx.insert(("a",), 1)
        idx.insert(("a",), 2)
        assert idx.lookup(("a",)) == {1, 2}

    def test_lookup_missing_is_empty(self):
        assert HashIndex("i", (0,)).lookup(("nope",)) == frozenset()

    def test_remove(self):
        idx = HashIndex("i", (0,))
        idx.insert(("a",), 1)
        idx.remove(("a",), 1)
        assert idx.lookup(("a",)) == frozenset()
        assert len(idx) == 0

    def test_remove_nonexistent_is_noop(self):
        idx = HashIndex("i", (0,))
        idx.remove(("a",), 1)  # no raise

    def test_composite_key(self):
        idx = HashIndex("i", (0, 2))
        row = ["x", "ignored", 7]
        assert idx.key_for(row) == ("x", 7)

    def test_distinct_keys(self):
        idx = HashIndex("i", (0,))
        idx.insert(("a",), 1)
        idx.insert(("b",), 2)
        assert sorted(idx.distinct_keys()) == [("a",), ("b",)]


class TestOrderedIndex:
    def make(self, keys):
        idx = OrderedIndex("o", 0)
        for rid, key in enumerate(keys):
            idx.insert(key, rid)
        return idx

    def test_lookup(self):
        idx = self.make(["b", "a", "c"])
        assert idx.lookup("a") == {1}

    def test_duplicate_keys_share_entry(self):
        idx = OrderedIndex("o", 0)
        idx.insert("k", 1)
        idx.insert("k", 2)
        assert idx.lookup("k") == {1, 2}
        assert len(idx) == 1

    def test_remove_last_rid_removes_key(self):
        idx = OrderedIndex("o", 0)
        idx.insert("k", 1)
        idx.remove("k", 1)
        assert len(idx) == 0
        assert list(idx.range_scan()) == []

    def test_range_scan_inclusive(self):
        idx = self.make(["a", "b", "c", "d"])
        keys = [k for k, _ in idx.range_scan("b", "c")]
        assert keys == ["b", "c"]

    def test_range_scan_exclusive(self):
        idx = self.make(["a", "b", "c", "d"])
        keys = [k for k, _ in idx.range_scan("a", "d", False, False)]
        assert keys == ["b", "c"]

    def test_range_scan_open_ends(self):
        idx = self.make(["a", "b", "c"])
        assert [k for k, _ in idx.range_scan()] == ["a", "b", "c"]

    def test_prefix_scan(self):
        idx = self.make(["lfn1", "lfn2", "other", "lfn3"])
        assert [k for k, _ in idx.prefix_scan("lfn")] == ["lfn1", "lfn2", "lfn3"]

    def test_prefix_scan_empty_prefix_scans_all(self):
        idx = self.make(["b", "a"])
        assert [k for k, _ in idx.prefix_scan("")] == ["a", "b"]

    def test_prefix_scan_no_match(self):
        idx = self.make(["abc"])
        assert list(idx.prefix_scan("zzz")) == []


@settings(max_examples=50)
@given(st.lists(st.text(min_size=0, max_size=8), max_size=40))
def test_ordered_index_keys_always_sorted(keys):
    """Property: internal key list stays sorted under arbitrary inserts."""
    idx = OrderedIndex("o", 0)
    for rid, key in enumerate(keys):
        idx.insert(key, rid)
    scanned = [k for k, _ in idx.range_scan()]
    assert scanned == sorted(set(keys))


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.sampled_from("abcde"), st.integers(0, 5)),
        max_size=40,
    )
)
def test_ordered_index_insert_remove_roundtrip(ops):
    """Property: insert-then-remove of everything leaves an empty index."""
    idx = OrderedIndex("o", 0)
    for key, rid in ops:
        idx.insert(key, rid)
    for key, rid in ops:
        idx.remove(key, rid)
    assert len(idx) == 0


@settings(max_examples=50)
@given(
    st.lists(st.text("ab", min_size=0, max_size=6), max_size=30),
    st.text("ab", min_size=0, max_size=3),
)
def test_prefix_scan_matches_naive_filter(keys, prefix):
    """Property: prefix_scan equals filtering all keys by startswith."""
    idx = OrderedIndex("o", 0)
    for rid, key in enumerate(keys):
        idx.insert(key, rid)
    got = [k for k, _ in idx.prefix_scan(prefix)]
    expected = sorted({k for k in keys if k.startswith(prefix)})
    assert got == expected
