"""ODBC-like layer: DSN registry, connections, cursors."""

import pytest

from repro.db.engine import Database
from repro.db.errors import ConnectionClosedError, UnknownDSNError
from repro.db.odbc import connect, register_dsn, registered_dsns, unregister_dsn


@pytest.fixture
def dsn():
    db = Database("odbc-test")
    db.execute("CREATE TABLE t (id INT, name VARCHAR(50))")
    register_dsn("test-dsn", db)
    yield "test-dsn"
    unregister_dsn("test-dsn")


class TestRegistry:
    def test_connect_by_dsn(self, dsn):
        conn = connect(dsn)
        assert conn.dsn == dsn

    def test_unknown_dsn(self):
        with pytest.raises(UnknownDSNError):
            connect("never-registered")

    def test_unregister(self, dsn):
        unregister_dsn(dsn)
        with pytest.raises(UnknownDSNError):
            connect(dsn)
        # re-register for fixture teardown idempotence
        register_dsn(dsn, Database())

    def test_registered_dsns_listed(self, dsn):
        assert dsn in registered_dsns()

    def test_connect_engine_directly(self):
        db = Database("direct")
        conn = connect(db)
        assert conn.database is db


class TestConnection:
    def test_execute_shorthand(self, dsn):
        conn = connect(dsn)
        conn.execute("INSERT INTO t (id, name) VALUES (1, 'a')")
        rows = conn.execute("SELECT name FROM t WHERE id = 1").rows
        assert rows == [("a",)]

    def test_closed_connection_rejects_ops(self, dsn):
        conn = connect(dsn)
        conn.close()
        with pytest.raises(ConnectionClosedError):
            conn.execute("SELECT * FROM t")

    def test_context_manager(self, dsn):
        with connect(dsn) as conn:
            conn.execute("SELECT COUNT(*) FROM t")
        with pytest.raises(ConnectionClosedError):
            conn.execute("SELECT COUNT(*) FROM t")


class TestCursor:
    def test_fetchall(self, dsn):
        conn = connect(dsn)
        cur = conn.cursor()
        cur.execute("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')")
        cur.execute("SELECT name FROM t ORDER BY name")
        assert cur.fetchall() == [("a",), ("b",)]
        assert cur.fetchall() == []  # drained

    def test_fetchone(self, dsn):
        conn = connect(dsn)
        cur = conn.cursor()
        cur.execute("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')")
        cur.execute("SELECT name FROM t ORDER BY name")
        assert cur.fetchone() == ("a",)
        assert cur.fetchone() == ("b",)
        assert cur.fetchone() is None

    def test_executemany(self, dsn):
        conn = connect(dsn)
        cur = conn.cursor()
        cur.executemany(
            "INSERT INTO t (id, name) VALUES (?, ?)",
            [(1, "a"), (2, "b"), (3, "c")],
        )
        assert cur.rowcount == 3

    def test_rowcount_and_description(self, dsn):
        conn = connect(dsn)
        cur = conn.cursor()
        assert cur.rowcount == -1
        cur.execute("SELECT id, name FROM t")
        assert [d[0] for d in cur.description] == ["id", "name"]

    def test_closed_cursor_rejects(self, dsn):
        cur = connect(dsn).cursor()
        cur.close()
        with pytest.raises(ConnectionClosedError):
            cur.execute("SELECT * FROM t")
