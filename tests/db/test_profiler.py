"""Query-level observability: profiles, slow-query log, timed latches."""

from __future__ import annotations

import threading

import pytest

from repro.db.mysql_engine import MySQLEngine
from repro.db.postgres_engine import PostgresEngine
from repro.db.profiler import (
    OpStats,
    QueryLog,
    QueryLogEntry,
    QueryProfile,
    QueryProfiler,
    TimedLatch,
    normalize_statement,
    statement_class,
)
from repro.db.sql.parser import parse
from repro.obs.metrics import MetricsRegistry


class FakeClock:
    """Deterministic clock advancing a fixed step per call."""

    def __init__(self, step: float = 0.001) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ---------------------------------------------------------------------------
# OpStats / QueryProfile
# ---------------------------------------------------------------------------


class TestQueryProfile:
    def test_op_render_includes_actuals(self):
        op = OpStats(
            "drive", "hash index lookup t(a)",
            rows_examined=5, rows_returned=3, dead_hits=2, elapsed=0.0015,
        )
        assert op.render() == (
            "drive: hash index lookup t(a) "
            "(actual rows examined=5 returned=3 dead_hits=2 time=1.500ms)"
        )

    def test_op_render_omits_unset_fields(self):
        op = OpStats("sort", "name", rows_returned=4)
        assert op.render() == "sort: name (actual returned=4)"

    def test_rows_examined_counts_drive_and_join_only(self):
        profile = QueryProfile()
        profile.add_op("drive", "x", rows_examined=10)
        profile.add_op("join", "y", rows_examined=7)
        profile.add_op("filter", "z", rows_examined=99)
        assert profile.rows_examined == 17

    def test_dead_hits_sum_over_all_ops(self):
        profile = QueryProfile()
        profile.add_op("drive", "x", dead_hits=4)
        profile.add_op("join", "y", dead_hits=2)
        assert profile.dead_index_hits == 6

    def test_plan_lines_end_with_total(self):
        profile = QueryProfile()
        profile.add_op("drive", "full scan t")
        profile.duration = 0.25
        profile.rows_returned = 12
        assert profile.plan_lines()[-1] == "total: 12 rows in 250.000ms"


class TestStatementClass:
    def test_select_includes_table(self):
        stmt = parse("SELECT a FROM t_lfn WHERE a = 1")
        assert statement_class(stmt) == "select:t_lfn"

    def test_insert_and_delete(self):
        assert statement_class(parse("INSERT INTO t_map (a) VALUES (1)")) == (
            "insert:t_map"
        )
        assert statement_class(parse("DELETE FROM t_pfn WHERE a = 1")) == (
            "delete:t_pfn"
        )

    def test_vacuum_has_no_table_suffix(self):
        assert statement_class(parse("VACUUM")) == "vacuum"


class TestNormalizeStatement:
    def test_literals_become_placeholders(self):
        a = normalize_statement("SELECT x FROM t WHERE a = 'one' AND b = 2")
        b = normalize_statement("SELECT x FROM t WHERE a = 'two' AND b = 99")
        assert a == b
        assert "'one'" not in a and "2" not in a

    def test_params_normalize_like_literals(self):
        assert normalize_statement(
            "SELECT x FROM t WHERE a = ?"
        ) == normalize_statement("SELECT x FROM t WHERE a = 'v'")

    def test_unparseable_text_returned_stripped(self):
        assert normalize_statement("  !! not sql !!  ") == "!! not sql !!"


# ---------------------------------------------------------------------------
# QueryLog retention
# ---------------------------------------------------------------------------


def entry(seq, duration=0.0, error=None):
    return QueryLogEntry(
        seq=seq, sql=f"q{seq}", statement_class="select:t",
        duration=duration, error=error,
    )


class TestQueryLog:
    def test_slow_and_error_statements_retained(self):
        log = QueryLog(capacity=8, slow_threshold=0.050)
        log.offer(entry(1, duration=0.001))
        log.offer(entry(2, duration=0.060))
        log.offer(entry(3, duration=0.001, error="boom"))
        kept = [e.seq for e in log.interesting()]
        assert kept == [2, 3]
        assert log.stats()["offered"] == 3
        assert log.stats()["retained"] == 2

    def test_fast_traffic_cannot_evict_slow_statements(self):
        log = QueryLog(capacity=4, slow_threshold=0.050, recent_capacity=2)
        log.offer(entry(1, duration=0.100))
        for seq in range(2, 50):
            log.offer(entry(seq, duration=0.001))
        assert [e.seq for e in log.interesting()] == [1]
        assert len(log.recent()) == 2

    def test_interesting_ring_evicts_oldest(self):
        log = QueryLog(capacity=3, slow_threshold=0.0)
        for seq in range(1, 6):
            log.offer(entry(seq, duration=1.0))
        assert [e.seq for e in log.interesting()] == [3, 4, 5]

    def test_to_dict_limit_keeps_newest(self):
        log = QueryLog(capacity=10, slow_threshold=0.0)
        for seq in range(1, 6):
            log.offer(entry(seq, duration=1.0))
        payload = log.to_dict(limit=2)
        assert [q["seq"] for q in payload["queries"]] == [4, 5]
        assert payload["stats"]["capacity"] == 10

    def test_entry_round_trips_through_dict(self):
        original = QueryLogEntry(
            seq=7, sql="SELECT ?", statement_class="select:t",
            duration=0.08, rows_examined=3, rows_returned=1,
            dead_index_hits=2, error=None, trace_id="t1", span_id="s1",
            plan=[{"name": "drive"}],
        )
        restored = QueryLogEntry.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)


class TestQueryProfiler:
    def test_record_counts_per_class_and_slow(self):
        registry = MetricsRegistry()
        profiler = QueryProfiler(metrics=registry, slow_threshold=0.050)
        stmt = parse("SELECT a FROM t WHERE a = 1")
        profiler.record("SELECT a FROM t WHERE a = 1", stmt, QueryProfile(), 0.010)
        profiler.record("SELECT a FROM t WHERE a = 2", stmt, QueryProfile(), 0.200)
        snap = registry.snapshot()
        assert snap.counters["db.statements{class=select:t}"] == 2
        assert snap.counters["db.slow_statements"] == 1
        assert snap.histograms["db.statement_latency{class=select:t}"].count == 2

    def test_errors_retained_but_not_counted_slow(self):
        registry = MetricsRegistry()
        profiler = QueryProfiler(metrics=registry, slow_threshold=0.050)
        stmt = parse("SELECT a FROM t WHERE a = 1")
        recorded = profiler.record(
            "SELECT a FROM t WHERE a = 1", stmt, QueryProfile(), 0.300,
            error="NoSuchTableError: t",
        )
        assert recorded.error == "NoSuchTableError: t"
        assert registry.snapshot().counters["db.slow_statements"] == 0
        assert [e.seq for e in profiler.log.interesting()] == [recorded.seq]

    def test_trace_context_lands_on_entry(self):
        profiler = QueryProfiler(slow_threshold=0.0)
        stmt = parse("SELECT a FROM t WHERE a = 1")
        recorded = profiler.record(
            "SELECT a FROM t WHERE a = 1", stmt, QueryProfile(), 0.001,
            trace=("trace-1", "span-9"),
        )
        assert (recorded.trace_id, recorded.span_id) == ("trace-1", "span-9")

    def test_configure_recreates_log_on_capacity_change(self):
        profiler = QueryProfiler()
        old_log = profiler.log
        profiler.configure(enabled=True, slow_threshold=0.01, capacity=32)
        assert profiler.enabled
        assert profiler.log is not old_log
        assert profiler.log.capacity == 32
        assert profiler.log.slow_threshold == 0.01
        # Same capacity: the log (and its entries) are kept.
        same = profiler.log
        profiler.configure(slow_threshold=0.02, capacity=32)
        assert profiler.log is same


# ---------------------------------------------------------------------------
# TimedLatch
# ---------------------------------------------------------------------------


class TestTimedLatch:
    def test_uncontended_acquire_observes_nothing(self):
        registry = MetricsRegistry()
        hist = registry.histogram("db.latch_wait", table="t")
        latch = TimedLatch(hist=hist)
        with latch:
            pass
        assert registry.snapshot().histograms[
            "db.latch_wait{table=t}"
        ].count == 0

    def test_contended_acquire_observes_wait(self):
        registry = MetricsRegistry()
        hist = registry.histogram("db.latch_wait", table="t")
        latch = TimedLatch(hist=hist, reentrant=False)
        held = threading.Event()
        release = threading.Event()

        def holder():
            with latch:
                held.set()
                release.wait(5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        held.wait(5.0)
        acquired = latch.acquire(timeout=0.01)  # times out: contended
        if acquired:  # pragma: no cover - scheduling race safety
            latch.release()
        release.set()
        thread.join(5.0)
        assert registry.snapshot().histograms[
            "db.latch_wait{table=t}"
        ].count == 1

    def test_reentrant_latch_never_blocks_holder(self):
        latch = TimedLatch(reentrant=True)
        with latch:
            with latch:
                pass

    def test_null_histogram_delegates_straight_through(self):
        latch = TimedLatch()
        assert latch.acquire()
        latch.release()


# ---------------------------------------------------------------------------
# Engine integration: statement cache, table gauges, EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


def make_engine(**kwargs):
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0, **kwargs)
    engine.execute(
        "CREATE TABLE t_lfn (id INT NOT NULL AUTO_INCREMENT, "
        "name VARCHAR(250) NOT NULL, ref INT, "
        "PRIMARY KEY (id), UNIQUE (name))"
    )
    return engine


class TestStatementCache:
    def test_cache_is_bounded_lru(self):
        engine = make_engine()
        engine._statement_cache_size = 4
        for i in range(10):
            engine.execute(f"SELECT id FROM t_lfn WHERE name = 'x{i}'")
        assert len(engine._statement_cache) == 4
        # The most recent statements survive; the oldest were evicted.
        assert "SELECT id FROM t_lfn WHERE name = 'x9'" in engine._statement_cache
        assert (
            "SELECT id FROM t_lfn WHERE name = 'x0'"
            not in engine._statement_cache
        )

    def test_hit_refreshes_lru_position(self):
        engine = make_engine()
        engine._statement_cache_size = 2
        engine.execute("SELECT id FROM t_lfn WHERE name = 'a'")
        engine.execute("SELECT id FROM t_lfn WHERE name = 'b'")
        engine.execute("SELECT id FROM t_lfn WHERE name = 'a'")  # refresh a
        engine.execute("SELECT id FROM t_lfn WHERE name = 'c'")  # evicts b
        assert "SELECT id FROM t_lfn WHERE name = 'a'" in engine._statement_cache
        assert (
            "SELECT id FROM t_lfn WHERE name = 'b'"
            not in engine._statement_cache
        )

    def test_hit_and_miss_counters(self):
        registry = MetricsRegistry()
        engine = make_engine(metrics=registry)
        before = registry.snapshot()
        engine.execute("SELECT id FROM t_lfn WHERE name = ?", ["a"])
        engine.execute("SELECT id FROM t_lfn WHERE name = ?", ["b"])
        delta = registry.snapshot().delta(before)
        assert delta.counters["db.stmt_cache_misses"] == 1
        assert delta.counters["db.stmt_cache_hits"] == 1


class TestTableGauges:
    def test_table_stats_exported_with_table_label(self):
        registry = MetricsRegistry()
        engine = make_engine(metrics=registry)
        engine.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 1)")
        engine.execute("INSERT INTO t_lfn (name, ref) VALUES ('b', 1)")
        engine.execute("DELETE FROM t_lfn WHERE name = 'a'")
        gauges = registry.snapshot().gauges
        assert gauges["db.table.live_tuples{table=t_lfn}"] == 1.0
        assert gauges["db.table.inserts{table=t_lfn}"] == 2.0
        assert gauges["db.table.deletes{table=t_lfn}"] == 1.0

    def test_postgres_dead_tuples_visible_as_gauge(self):
        registry = MetricsRegistry()
        engine = PostgresEngine(fsync=False, sync_latency=0.0, metrics=registry)
        engine.execute("CREATE TABLE t (a INT, PRIMARY KEY (a))")
        engine.execute("INSERT INTO t (a) VALUES (1)")
        engine.execute("DELETE FROM t WHERE a = 1")
        gauges = registry.snapshot().gauges
        assert gauges["db.table.dead_tuples{table=t}"] == 1.0
        engine.vacuum()
        gauges = registry.snapshot().gauges
        assert gauges["db.table.dead_tuples{table=t}"] == 0.0
        assert gauges["db.table.vacuums{table=t}"] == 1.0


class TestExplainAnalyze:
    def test_actual_rows_and_deterministic_timings(self):
        engine = make_engine()
        engine.profiler = QueryProfiler(clock=FakeClock(step=0.001))
        for i in range(5):
            engine.execute(f"INSERT INTO t_lfn (name, ref) VALUES ('n{i}', 1)")
        lines = [
            r[0]
            for r in engine.execute(
                "EXPLAIN ANALYZE SELECT id FROM t_lfn WHERE name = 'n3'"
            ).rows
        ]
        assert lines[0].startswith("drive: hash index lookup t_lfn(name)")
        assert "rows examined=1 returned=1" in lines[0]
        # FakeClock steps 1 ms per reading, so every timing is an exact
        # multiple of 1 ms — no real wall time leaks in.
        assert "time=1.000ms" in lines[0]
        assert lines[-1].startswith("total: 1 rows in ")

    def test_analyze_reports_dead_index_hits(self):
        engine = PostgresEngine(fsync=False, sync_latency=0.0)
        engine.execute(
            "CREATE TABLE t (id INT NOT NULL AUTO_INCREMENT, "
            "name VARCHAR(64) NOT NULL, PRIMARY KEY (id), UNIQUE (name))"
        )
        for _ in range(3):
            engine.execute("INSERT INTO t (name) VALUES ('ghost')")
            engine.execute("DELETE FROM t WHERE name = 'ghost'")
        lines = [
            r[0]
            for r in engine.execute(
                "EXPLAIN ANALYZE SELECT id FROM t WHERE name = 'ghost'"
            ).rows
        ]
        # Each add/delete generation leaves a dead index entry the probe
        # must skip — the fig08 decay, visible per statement.
        assert "dead_hits=3" in lines[0]

    def test_analyze_executes_the_statement(self):
        engine = make_engine()
        engine.execute("INSERT INTO t_lfn (name, ref) VALUES ('gone', 1)")
        lines = [
            r[0]
            for r in engine.execute(
                "EXPLAIN ANALYZE DELETE FROM t_lfn WHERE name = 'gone'"
            ).rows
        ]
        # PostgreSQL semantics: EXPLAIN ANALYZE runs the statement.
        assert engine.execute("SELECT COUNT(*) FROM t_lfn").scalar() == 0
        assert any(line.startswith("delete") for line in lines)

    def test_profiled_path_returns_normal_results(self):
        engine = make_engine()
        engine.profiler.configure(enabled=True, slow_threshold=0.0)
        engine.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 1)")
        result = engine.execute("SELECT name FROM t_lfn WHERE name = 'a'")
        assert result.rows == [("a",)]
        classes = {
            e.statement_class for e in engine.profiler.log.interesting()
        }
        assert {"insert:t_lfn", "select:t_lfn"} <= classes

    def test_profiled_error_statement_retained(self):
        engine = make_engine()
        engine.profiler.configure(enabled=True, slow_threshold=10.0)
        with pytest.raises(Exception):
            engine.execute("SELECT id FROM t_missing")
        errors = [
            e for e in engine.profiler.log.interesting() if e.error
        ]
        assert errors and "NoSuchTableError" in errors[0].error
