"""TableSchema validation and row coercion tests."""

import pytest

from repro.db.errors import IntegrityError, NoSuchColumnError, TypeMismatchError
from repro.db.schema import Column, TableSchema
from repro.db.types import INT, VARCHAR


def lfn_schema() -> TableSchema:
    return TableSchema(
        name="t_lfn",
        columns=[
            Column("id", INT, nullable=False, autoincrement=True),
            Column("name", VARCHAR(250), nullable=False),
            Column("ref", INT),
        ],
        primary_key=("id",),
        unique=[("name",)],
    )


class TestSchemaConstruction:
    def test_column_names_ordered(self):
        assert lfn_schema().column_names == ["id", "name", "ref"]

    def test_duplicate_column_rejected(self):
        with pytest.raises(IntegrityError):
            TableSchema("t", [Column("a", INT), Column("A", INT)])

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(NoSuchColumnError):
            TableSchema("t", [Column("a", INT)], primary_key=("b",))

    def test_unknown_unique_column_rejected(self):
        with pytest.raises(NoSuchColumnError):
            TableSchema("t", [Column("a", INT)], unique=[("nope",)])

    def test_key_constraints_pk_first(self):
        keys = lfn_schema().key_constraints()
        assert keys == [("id",), ("name",)]


class TestColumnLookup:
    def test_case_insensitive(self):
        schema = lfn_schema()
        assert schema.column_index("NAME") == 1
        assert schema.column("Ref").name == "ref"

    def test_missing_column_raises(self):
        with pytest.raises(NoSuchColumnError):
            lfn_schema().column_index("missing")

    def test_has_column(self):
        schema = lfn_schema()
        assert schema.has_column("id")
        assert not schema.has_column("nope")


class TestCoerceRow:
    def test_full_row(self):
        row = lfn_schema().coerce_row({"id": 1, "name": "x", "ref": 2})
        assert row == [1, "x", 2]

    def test_autoincrement_column_may_be_omitted(self):
        row = lfn_schema().coerce_row({"name": "x", "ref": 0})
        assert row == [None, "x", 0]

    def test_nullable_column_defaults_null(self):
        row = lfn_schema().coerce_row({"name": "x"})
        assert row == [None, "x", None]

    def test_not_null_violation(self):
        with pytest.raises(IntegrityError):
            lfn_schema().coerce_row({"ref": 1})

    def test_explicit_null_in_not_null_column(self):
        with pytest.raises(IntegrityError):
            lfn_schema().coerce_row({"name": None})

    def test_unknown_column_rejected(self):
        with pytest.raises(NoSuchColumnError):
            lfn_schema().coerce_row({"name": "x", "bogus": 1})

    def test_type_error_includes_context(self):
        with pytest.raises(TypeMismatchError, match="t_lfn.ref"):
            lfn_schema().coerce_row({"name": "x", "ref": "zzz"})

    def test_values_are_coerced(self):
        row = lfn_schema().coerce_row({"name": "x", "ref": "5"})
        assert row[2] == 5
