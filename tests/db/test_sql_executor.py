"""SQL executor tests against a live engine, plus LIKE property tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.engine import Database
from repro.db.errors import (
    DuplicateKeyError,
    NoSuchTableError,
    SQLSyntaxError,
)
from repro.db.sql.executor import like_prefix, like_to_regex


@pytest.fixture
def db():
    database = Database("test")
    database.execute(
        "CREATE TABLE t_lfn (id INT NOT NULL AUTO_INCREMENT, "
        "name VARCHAR(250) NOT NULL, ref INT, "
        "PRIMARY KEY (id), UNIQUE (name))"
    )
    database.execute("CREATE INDEX lfn_prefix ON t_lfn (name) USING BTREE")
    database.execute(
        "CREATE TABLE t_pfn (id INT NOT NULL AUTO_INCREMENT, "
        "name VARCHAR(250) NOT NULL, ref INT, "
        "PRIMARY KEY (id), UNIQUE (name))"
    )
    database.execute(
        "CREATE TABLE t_map (lfn_id INT NOT NULL, pfn_id INT NOT NULL, "
        "PRIMARY KEY (lfn_id, pfn_id))"
    )
    database.execute("CREATE INDEX map_lfn ON t_map (lfn_id)")
    database.execute("CREATE INDEX map_pfn ON t_map (pfn_id)")
    return database


def load(db, n=5, replicas=1):
    for i in range(n):
        r = db.execute(
            "INSERT INTO t_lfn (name, ref) VALUES (?, ?)", [f"lfn{i}", replicas]
        )
        for j in range(replicas):
            p = db.execute(
                "INSERT INTO t_pfn (name, ref) VALUES (?, ?)", [f"pfn{i}_{j}", 1]
            )
            db.execute(
                "INSERT INTO t_map (lfn_id, pfn_id) VALUES (?, ?)",
                [r.lastrowid, p.lastrowid],
            )


class TestInsertSelect:
    def test_insert_returns_lastrowid(self, db):
        r = db.execute("INSERT INTO t_lfn (name, ref) VALUES (?, ?)", ["a", 0])
        assert r.lastrowid == 1 and r.rowcount == 1

    def test_multi_row_insert(self, db):
        r = db.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 0), ('b', 0)")
        assert r.rowcount == 2

    def test_select_by_indexed_equality(self, db):
        load(db)
        rows = db.execute("SELECT id, ref FROM t_lfn WHERE name = ?", ["lfn3"]).rows
        assert len(rows) == 1 and rows[0][1] == 1

    def test_select_star(self, db):
        load(db, 2)
        result = db.execute("SELECT * FROM t_lfn WHERE name = 'lfn0'")
        assert result.columns == ["id", "name", "ref"]

    def test_select_missing_returns_empty(self, db):
        load(db)
        assert db.execute("SELECT id FROM t_lfn WHERE name = 'zzz'").rows == []

    def test_count_star(self, db):
        load(db, 7)
        assert db.execute("SELECT COUNT(*) FROM t_lfn").scalar() == 7

    def test_duplicate_unique_raises(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 0)")
        with pytest.raises(DuplicateKeyError):
            db.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 0)")

    def test_unknown_table(self, db):
        with pytest.raises(NoSuchTableError):
            db.execute("SELECT * FROM nope")


class TestJoins:
    def test_three_way_join(self, db):
        load(db, 3, replicas=2)
        rows = db.execute(
            "SELECT p.name FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id "
            "JOIN t_pfn p ON m.pfn_id = p.id "
            "WHERE l.name = ?",
            ["lfn1"],
        ).rows
        assert sorted(r[0] for r in rows) == ["pfn1_0", "pfn1_1"]

    def test_reverse_join(self, db):
        load(db, 3)
        rows = db.execute(
            "SELECT l.name FROM t_pfn p "
            "JOIN t_map m ON p.id = m.pfn_id "
            "JOIN t_lfn l ON m.lfn_id = l.id "
            "WHERE p.name = ?",
            ["pfn2_0"],
        ).rows
        assert rows == [("lfn2",)]

    def test_join_with_no_matches(self, db):
        load(db, 1)
        rows = db.execute(
            "SELECT p.name FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id "
            "JOIN t_pfn p ON m.pfn_id = p.id "
            "WHERE l.name = 'absent'",
        ).rows
        assert rows == []

    def test_duplicate_alias_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("SELECT x.id FROM t_lfn x JOIN t_pfn x ON x.id = x.id")


class TestWhereOperators:
    def test_like_prefix(self, db):
        load(db, 12)
        rows = db.execute("SELECT name FROM t_lfn WHERE name LIKE 'lfn1%'").rows
        assert sorted(r[0] for r in rows) == ["lfn1", "lfn10", "lfn11"]

    def test_like_underscore(self, db):
        load(db, 12)
        rows = db.execute("SELECT name FROM t_lfn WHERE name LIKE 'lfn_'").rows
        assert len(rows) == 10

    def test_inequality(self, db):
        load(db, 5)
        rows = db.execute("SELECT name FROM t_lfn WHERE id > 3").rows
        assert len(rows) == 2

    def test_in_list(self, db):
        load(db, 5)
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE name IN ('lfn0', 'lfn4', 'nope')"
        ).rows
        assert len(rows) == 2

    def test_or(self, db):
        load(db, 5)
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE name = 'lfn0' OR name = 'lfn1'"
        ).rows
        assert len(rows) == 2

    def test_null_comparison_is_false(self, db):
        db.execute("INSERT INTO t_lfn (name) VALUES ('a')")  # ref NULL
        assert db.execute("SELECT name FROM t_lfn WHERE ref = 0").rows == []

    def test_is_null(self, db):
        db.execute("INSERT INTO t_lfn (name) VALUES ('a')")
        assert len(db.execute("SELECT name FROM t_lfn WHERE ref IS NULL").rows) == 1


class TestUpdateDelete:
    def test_update_by_key(self, db):
        load(db, 3)
        n = db.execute("UPDATE t_lfn SET ref = 9 WHERE name = 'lfn1'").rowcount
        assert n == 1
        assert db.execute("SELECT ref FROM t_lfn WHERE name = 'lfn1'").scalar() == 9

    def test_update_no_match(self, db):
        assert db.execute("UPDATE t_lfn SET ref = 1 WHERE name = 'x'").rowcount == 0

    def test_delete_by_key(self, db):
        load(db, 3)
        assert db.execute("DELETE FROM t_lfn WHERE name = 'lfn0'").rowcount == 1
        assert db.execute("SELECT COUNT(*) FROM t_lfn").scalar() == 2

    def test_delete_composite_key(self, db):
        load(db, 2)
        n = db.execute(
            "DELETE FROM t_map WHERE lfn_id = ? AND pfn_id = ?", [1, 1]
        ).rowcount
        assert n == 1

    def test_delete_all(self, db):
        load(db, 4)
        assert db.execute("DELETE FROM t_lfn").rowcount == 4


class TestOrderLimitDistinct:
    def test_order_by_desc(self, db):
        load(db, 3)
        rows = db.execute("SELECT name FROM t_lfn ORDER BY name DESC").rows
        assert [r[0] for r in rows] == ["lfn2", "lfn1", "lfn0"]

    def test_limit(self, db):
        load(db, 10)
        assert len(db.execute("SELECT name FROM t_lfn LIMIT 4").rows) == 4

    def test_distinct(self, db):
        load(db, 3)
        rows = db.execute("SELECT DISTINCT ref FROM t_lfn").rows
        assert rows == [(1,)]


class TestStatementCache:
    def test_repeated_statement_parsed_once(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES (?, ?)", ["a", 0])
        size_before = len(db._statement_cache)
        db.execute("INSERT INTO t_lfn (name, ref) VALUES (?, ?)", ["b", 0])
        assert len(db._statement_cache) == size_before


class TestLikeHelpers:
    def test_prefix_extraction(self):
        assert like_prefix("abc%") == "abc"
        assert like_prefix("a_c") == "a"
        assert like_prefix("nowildcard") == "nowildcard"
        assert like_prefix("%x") == ""

    @settings(max_examples=100)
    @given(st.text("abc%_", max_size=8), st.text("abc", max_size=8))
    def test_like_matches_prefix_invariant(self, pattern, candidate):
        """Property: anything matching LIKE starts with the literal prefix."""
        if like_to_regex(pattern).fullmatch(candidate):
            assert candidate.startswith(like_prefix(pattern))

    @settings(max_examples=100)
    @given(st.text("abcdef", max_size=10))
    def test_percent_suffix_matches_everything_with_prefix(self, s):
        assert like_to_regex(s + "%").fullmatch(s + "anything")
        assert like_to_regex(s + "%").fullmatch(s)
