"""Executor edge cases: composite-key paths, DISTINCT over joins,
parameterized IN, NULL handling, multi-row semantics."""

import pytest

from repro.db.engine import Database
from repro.db.errors import SQLSyntaxError


@pytest.fixture
def db():
    database = Database("edge")
    database.execute(
        "CREATE TABLE t_map (lfn_id INT NOT NULL, pfn_id INT NOT NULL, "
        "PRIMARY KEY (lfn_id, pfn_id))"
    )
    database.execute("CREATE INDEX m_lfn ON t_map (lfn_id)")
    database.execute(
        "CREATE TABLE t_lfn (id INT NOT NULL AUTO_INCREMENT, "
        "name VARCHAR(100) NOT NULL, ref INT, PRIMARY KEY (id))"
    )
    return database


class TestCompositeKeyAccess:
    def test_composite_equality_uses_pk_index(self, db):
        for lfn in range(5):
            for pfn in range(3):
                db.execute(
                    "INSERT INTO t_map (lfn_id, pfn_id) VALUES (?, ?)",
                    [lfn, pfn],
                )
        rows = db.execute(
            "SELECT lfn_id FROM t_map WHERE lfn_id = ? AND pfn_id = ?", [3, 2]
        ).rows
        assert rows == [(3,)]
        plan = db.execute(
            "EXPLAIN SELECT lfn_id FROM t_map WHERE lfn_id = ? AND pfn_id = ?",
            [3, 2],
        ).rows
        assert "hash index lookup t_map(lfn_id, pfn_id)" in plan[0][0]

    def test_partial_composite_uses_single_column_index(self, db):
        db.execute("INSERT INTO t_map (lfn_id, pfn_id) VALUES (7, 1), (7, 2)")
        rows = db.execute(
            "SELECT pfn_id FROM t_map WHERE lfn_id = ?", [7]
        ).rows
        assert sorted(r[0] for r in rows) == [1, 2]
        plan = db.execute(
            "EXPLAIN SELECT pfn_id FROM t_map WHERE lfn_id = ?", [7]
        ).rows
        assert "hash index lookup t_map(lfn_id)" in plan[0][0]


class TestDistinctAndAliases:
    def test_distinct_over_join(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 1), ('b', 1)")
        db.execute(
            "INSERT INTO t_map (lfn_id, pfn_id) VALUES (1, 10), (1, 11), (2, 10)"
        )
        rows = db.execute(
            "SELECT DISTINCT m.pfn_id FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id"
        ).rows
        assert sorted(r[0] for r in rows) == [10, 11]

    def test_column_alias_in_output(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('x', 9)")
        result = db.execute("SELECT ref AS weight FROM t_lfn")
        assert result.columns == ["weight"]

    def test_order_by_alias(self, db):
        db.execute(
            "INSERT INTO t_lfn (name, ref) VALUES ('a', 3), ('b', 1), ('c', 2)"
        )
        rows = db.execute(
            "SELECT name, ref AS weight FROM t_lfn ORDER BY weight"
        ).rows
        assert [r[0] for r in rows] == ["b", "c", "a"]


class TestParameterizedPredicates:
    def test_in_with_params(self, db):
        db.execute(
            "INSERT INTO t_lfn (name, ref) VALUES ('a', 1), ('b', 2), ('c', 3)"
        )
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE ref IN (?, ?)", [1, 3]
        ).rows
        assert sorted(r[0] for r in rows) == ["a", "c"]

    def test_like_with_param_prefix(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('run/a', 1)")
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('cal/b', 1)")
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE name LIKE ?", ["run/%"]
        ).rows
        assert rows == [("run/a",)]

    def test_mixed_literal_and_param(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 5)")
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE ref > 1 AND name = ?", ["a"]
        ).rows
        assert rows == [("a",)]


class TestNullSemantics:
    def test_null_not_equal_to_null(self, db):
        db.execute("INSERT INTO t_lfn (name) VALUES ('n1'), ('n2')")  # ref NULL
        rows = db.execute(
            "SELECT COUNT(*) FROM t_lfn WHERE ref = ref"
        ).scalar()
        # NULL = NULL is not true in SQL.
        assert rows == 0

    def test_order_by_with_nulls(self, db):
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', 2)")
        db.execute("INSERT INTO t_lfn (name) VALUES ('b')")
        db.execute("INSERT INTO t_lfn (name, ref) VALUES ('c', 1)")
        rows = db.execute("SELECT name FROM t_lfn ORDER BY ref").rows
        # NULLs sort last in this dialect.
        assert [r[0] for r in rows] == ["c", "a", "b"]


class TestMultiRowAndErrors:
    def test_multi_row_insert_rowcount(self, db):
        result = db.execute(
            "INSERT INTO t_map (lfn_id, pfn_id) VALUES (1, 1), (1, 2), (2, 1)"
        )
        assert result.rowcount == 3

    def test_update_multiple_rows(self, db):
        db.execute(
            "INSERT INTO t_lfn (name, ref) VALUES ('a', 1), ('b', 1), ('c', 2)"
        )
        count = db.execute("UPDATE t_lfn SET ref = 9 WHERE ref = 1").rowcount
        assert count == 2

    def test_count_with_where(self, db):
        db.execute(
            "INSERT INTO t_lfn (name, ref) VALUES ('a', 1), ('b', 2), ('c', 2)"
        )
        assert db.execute(
            "SELECT COUNT(*) FROM t_lfn WHERE ref = 2"
        ).scalar() == 2

    def test_insert_expression_rejected(self, db):
        with pytest.raises(SQLSyntaxError):
            db.execute("INSERT INTO t_lfn (name, ref) VALUES ('a', ref)")


class TestInListProbe:
    """The executor builds a constant-time set per IN list (built once per
    statement); these pin its semantics to the row-at-a-time scan."""

    def _fill(self, db, n=40):
        for i in range(n):
            db.execute(
                "INSERT INTO t_lfn (name, ref) VALUES (?, ?)",
                [f"lfn{i}", i % 10],
            )

    def test_large_literal_in_list(self, db):
        self._fill(db)
        wanted = ", ".join(f"'lfn{i}'" for i in range(0, 40, 3))
        rows = db.execute(
            f"SELECT name FROM t_lfn WHERE name IN ({wanted})"
        ).rows
        assert sorted(r[0] for r in rows) == sorted(
            f"lfn{i}" for i in range(0, 40, 3)
        )

    def test_parameterized_in_list_rebinds_per_execution(self, db):
        self._fill(db, 10)
        sql = "SELECT name FROM t_lfn WHERE ref IN (?, ?)"
        first = db.execute(sql, [1, 2]).rows
        second = db.execute(sql, [7, 8]).rows
        # Same cached statement, different params: the probe set must be
        # rebuilt per execution, not remembered from the first run.
        assert sorted(r[0] for r in first) == ["lfn1", "lfn2"]
        assert sorted(r[0] for r in second) == ["lfn7", "lfn8"]

    def test_duplicate_and_padded_items(self, db):
        self._fill(db, 5)
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE name IN "
            "('lfn1', 'lfn1', 'lfn1', 'lfn3')"
        ).rows
        assert sorted(r[0] for r in rows) == ["lfn1", "lfn3"]

    def test_non_constant_item_falls_back_to_scan(self, db):
        self._fill(db, 6)
        # A column reference among the items defeats the constant probe;
        # the row-at-a-time path must produce the same answer.
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE ref IN (id, 3)"
        ).rows
        by_scan = db.execute(
            "SELECT name, id, ref FROM t_lfn"
        ).rows
        expected = sorted(
            name for name, row_id, ref in by_scan if ref in (row_id, 3)
        )
        assert sorted(r[0] for r in rows) == expected

    def test_not_in(self, db):
        self._fill(db, 6)
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE name NOT IN ('lfn0', 'lfn5')"
        ).rows
        assert sorted(r[0] for r in rows) == [f"lfn{i}" for i in range(1, 5)]

    def test_null_never_matches_literals(self, db):
        db.execute("INSERT INTO t_lfn (name) VALUES ('nullref')")  # ref NULL
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE ref IN (0, 1, 2)"
        ).rows
        assert rows == []

    def test_mixed_numeric_types_match(self, db):
        self._fill(db, 4)
        rows = db.execute(
            "SELECT name FROM t_lfn WHERE ref IN (1.0, 2)"
        ).rows
        assert sorted(r[0] for r in rows) == ["lfn1", "lfn2"]
