"""SQL tokenizer tests."""

import pytest

from repro.db.errors import SQLSyntaxError
from repro.db.sql.lexer import (
    EOF,
    IDENT,
    KW,
    NUMBER,
    OP,
    PARAM,
    STRING,
    tokenize,
)


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_gives_eof_only(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == EOF

    def test_keywords_uppercased(self):
        assert values("select from where") == ["SELECT", "FROM", "WHERE"]
        assert kinds("select") == [KW]

    def test_identifiers_preserved(self):
        toks = tokenize("t_lfn myCol")
        assert toks[0].value == "t_lfn" and toks[1].value == "myCol"
        assert kinds("t_lfn") == [IDENT]

    def test_params(self):
        assert kinds("? ?") == [PARAM, PARAM]

    def test_punctuation(self):
        assert values("( ) , . * ;") == ["(", ")", ",", ".", "*", ";"]

    def test_comparison_operators(self):
        assert values("= != <> < <= > >=") == ["=", "!=", "<>", "<", "<=", ">", ">="]

    def test_whitespace_and_newlines_ignored(self):
        assert kinds("a\n\t b") == [IDENT, IDENT]

    def test_line_comments_skipped(self):
        assert values("a -- comment here\nb") == ["a", "b"]


class TestLiterals:
    def test_integer(self):
        tok = tokenize("42")[0]
        assert tok.kind == NUMBER and tok.value == 42

    def test_float(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == NUMBER and tok.value == 3.25

    def test_scientific(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_string(self):
        tok = tokenize("'hello world'")[0]
        assert tok.kind == STRING and tok.value == "hello world"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a @ b")


class TestRealStatements:
    def test_rls_query_statement(self):
        text = (
            "SELECT p.name FROM t_lfn l JOIN t_map m ON l.id = m.lfn_id "
            "WHERE l.name = ?"
        )
        token_kinds = kinds(text)
        assert token_kinds[0] == KW
        assert PARAM in token_kinds
        assert OP in token_kinds

    def test_positions_recorded(self):
        toks = tokenize("ab cd")
        assert toks[0].pos == 0 and toks[1].pos == 3
