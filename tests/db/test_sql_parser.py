"""SQL parser tests."""

import pytest

from repro.db.errors import SQLSyntaxError
from repro.db.sql import ast
from repro.db.sql.parser import parse


class TestSelect:
    def test_simple(self):
        stmt = parse("SELECT name FROM t_lfn")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expr == ast.ColumnRef(None, "name")
        assert stmt.table.name == "t_lfn"

    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items == ()

    def test_qualified_columns_and_alias(self):
        stmt = parse("SELECT l.name FROM t_lfn l")
        assert stmt.items[0].expr == ast.ColumnRef("l", "name")
        assert stmt.table.alias == "l"

    def test_as_alias(self):
        stmt = parse("SELECT name AS n FROM t")
        assert stmt.items[0].alias == "n"

    def test_where_equality_param(self):
        stmt = parse("SELECT id FROM t WHERE name = ?")
        assert stmt.where == ast.Comparison(
            "=", ast.ColumnRef(None, "name"), ast.Param(0)
        )

    def test_param_indexes_sequential(self):
        stmt = parse("SELECT id FROM t WHERE a = ? AND b = ?")
        conj = stmt.where
        assert isinstance(conj, ast.And)
        assert conj.left.right == ast.Param(0)
        assert conj.right.right == ast.Param(1)

    def test_joins(self):
        stmt = parse(
            "SELECT p.name FROM t_lfn l "
            "JOIN t_map m ON l.id = m.lfn_id "
            "INNER JOIN t_pfn p ON m.pfn_id = p.id "
            "WHERE l.name = ?"
        )
        assert len(stmt.joins) == 2
        assert stmt.joins[0].table.name == "t_map"
        assert stmt.joins[1].table.alias == "p"

    def test_like(self):
        stmt = parse("SELECT name FROM t WHERE name LIKE 'lfn%'")
        assert stmt.where.op == "LIKE"
        assert stmt.where.right == ast.Literal("lfn%")

    def test_not_like(self):
        stmt = parse("SELECT name FROM t WHERE name NOT LIKE 'x%'")
        assert stmt.where.op == "NOT LIKE"

    def test_in_list(self):
        stmt = parse("SELECT id FROM t WHERE id IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InList)
        assert len(stmt.where.items) == 3

    def test_not_in(self):
        stmt = parse("SELECT id FROM t WHERE id NOT IN (1)")
        assert stmt.where.negated

    def test_is_null(self):
        stmt = parse("SELECT id FROM t WHERE ref IS NULL")
        assert isinstance(stmt.where, ast.IsNull) and not stmt.where.negated

    def test_is_not_null(self):
        stmt = parse("SELECT id FROM t WHERE ref IS NOT NULL")
        assert stmt.where.negated

    def test_or_precedence(self):
        stmt = parse("SELECT id FROM t WHERE a = 1 AND b = 2 OR c = 3")
        # (a=1 AND b=2) OR c=3
        assert isinstance(stmt.where, ast.Or)
        assert isinstance(stmt.where.left, ast.And)

    def test_parenthesized_expression(self):
        stmt = parse("SELECT id FROM t WHERE a = 1 AND (b = 2 OR c = 3)")
        assert isinstance(stmt.where, ast.And)
        assert isinstance(stmt.where.right, ast.Or)

    def test_not(self):
        stmt = parse("SELECT id FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.Not)

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM t")
        assert isinstance(stmt.items[0].expr, ast.CountStar)

    def test_order_by_limit(self):
        stmt = parse("SELECT name FROM t ORDER BY name DESC LIMIT 5")
        assert stmt.order_by[0].descending
        assert stmt.limit == 5

    def test_order_by_asc_default(self):
        stmt = parse("SELECT name FROM t ORDER BY name ASC")
        assert not stmt.order_by[0].descending

    def test_distinct(self):
        assert parse("SELECT DISTINCT name FROM t").distinct

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT name FROM t LIMIT 1.5")

    def test_trailing_semicolon_ok(self):
        parse("SELECT name FROM t;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT name FROM t garbage extra")


class TestInsert:
    def test_single_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (?, ?)")
        assert stmt.table == "t"
        assert stmt.columns == ("a", "b")
        assert stmt.rows == ((ast.Param(0), ast.Param(1)),)

    def test_multi_row(self):
        stmt = parse("INSERT INTO t (a) VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_literals(self):
        stmt = parse("INSERT INTO t (a, b, c) VALUES (1, 'x', NULL)")
        assert stmt.rows[0] == (ast.Literal(1), ast.Literal("x"), ast.Literal(None))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")


class TestUpdateDelete:
    def test_update(self):
        stmt = parse("UPDATE t SET ref = ?, name = 'x' WHERE id = ?")
        assert stmt.assignments[0] == ("ref", ast.Param(0))
        assert stmt.assignments[1] == ("name", ast.Literal("x"))
        assert stmt.where is not None

    def test_update_no_where(self):
        assert parse("UPDATE t SET a = 1").where is None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE name = ?")
        assert stmt.table == "t"

    def test_delete_all(self):
        assert parse("DELETE FROM t").where is None


class TestDDL:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t_lfn ("
            "id INT(11) NOT NULL AUTO_INCREMENT, "
            "name VARCHAR(250) NOT NULL, "
            "ref INT(11), "
            "PRIMARY KEY (id), UNIQUE (name))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].autoincrement
        assert stmt.columns[1].not_null and not stmt.columns[1].autoincrement
        assert stmt.primary_key == ("id",)
        assert stmt.unique == (("name",),)

    def test_composite_primary_key(self):
        stmt = parse("CREATE TABLE t_map (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ("a", "b")

    def test_create_index_default_hash(self):
        stmt = parse("CREATE INDEX i ON t (a, b)")
        assert stmt.using == "HASH" and stmt.columns == ("a", "b")

    def test_create_index_btree(self):
        stmt = parse("CREATE INDEX i ON t (name) USING BTREE")
        assert stmt.using == "BTREE"

    def test_drop_table(self):
        stmt = parse("DROP TABLE t")
        assert isinstance(stmt, ast.DropTable) and stmt.name == "t"

    def test_vacuum_all(self):
        assert parse("VACUUM").table is None

    def test_vacuum_table(self):
        assert parse("VACUUM t_lfn").table == "t_lfn"

    def test_unsupported_statement(self):
        with pytest.raises(SQLSyntaxError):
            parse("GRANT ALL ON t")
