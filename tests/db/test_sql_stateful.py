"""Model-based property test of the SQL layer against a dict model.

Random INSERT/DELETE/UPDATE statements run against both the engine and a
plain Python model; SELECTs must agree after every step, on both the
MySQL-flavoured (eager) and PostgreSQL-flavoured (MVCC) engines — with
interleaved VACUUMs on the latter to shake out dead-tuple bookkeeping.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.db.errors import DuplicateKeyError
from repro.db.mysql_engine import MySQLEngine
from repro.db.postgres_engine import PostgresEngine

NAMES = [f"n{i}" for i in range(8)]


class _SQLMachine(RuleBasedStateMachine):
    engine_factory = staticmethod(
        lambda: MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    )

    def __init__(self):
        super().__init__()
        self.db = self.engine_factory()
        self.db.execute(
            "CREATE TABLE t (id INT NOT NULL AUTO_INCREMENT, "
            "name VARCHAR(50) NOT NULL, ref INT, "
            "PRIMARY KEY (id), UNIQUE (name))"
        )
        self.model: dict[str, int | None] = {}

    @rule(name=st.sampled_from(NAMES), ref=st.integers(0, 5) | st.none())
    def insert(self, name, ref):
        if name in self.model:
            try:
                self.db.execute(
                    "INSERT INTO t (name, ref) VALUES (?, ?)", [name, ref]
                )
                raise AssertionError("expected DuplicateKeyError")
            except DuplicateKeyError:
                return
        else:
            self.db.execute(
                "INSERT INTO t (name, ref) VALUES (?, ?)", [name, ref]
            )
            self.model[name] = ref

    @rule(name=st.sampled_from(NAMES))
    def delete(self, name):
        count = self.db.execute(
            "DELETE FROM t WHERE name = ?", [name]
        ).rowcount
        assert count == (1 if name in self.model else 0)
        self.model.pop(name, None)

    @rule(name=st.sampled_from(NAMES), ref=st.integers(0, 5))
    def update(self, name, ref):
        count = self.db.execute(
            "UPDATE t SET ref = ? WHERE name = ?", [ref, name]
        ).rowcount
        assert count == (1 if name in self.model else 0)
        if name in self.model:
            self.model[name] = ref

    @invariant()
    def selects_agree(self):
        rows = self.db.execute("SELECT name, ref FROM t").rows
        assert {r[0]: r[1] for r in rows} == self.model
        assert self.db.execute("SELECT COUNT(*) FROM t").scalar() == len(
            self.model
        )
        for name in NAMES:
            got = self.db.execute(
                "SELECT ref FROM t WHERE name = ?", [name]
            ).rows
            if name in self.model:
                assert got == [(self.model[name],)]
            else:
                assert got == []


class _PGMachine(_SQLMachine):
    engine_factory = staticmethod(
        lambda: PostgresEngine(fsync=False, sync_latency=0.0, dead_hit_cost=0.0)
    )

    @rule()
    def vacuum(self):
        self.db.execute("VACUUM")


_SQLMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)
_PGMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)

TestSQLStatefulMySQL = _SQLMachine.TestCase
TestSQLStatefulPostgres = _PGMachine.TestCase
