"""RowHeap tombstone/reclaim semantics."""

import pytest

from repro.db.storage import RowHeap


class TestInsertAndScan:
    def test_insert_returns_sequential_rids(self):
        heap = RowHeap()
        assert heap.insert(["a"]) == 0
        assert heap.insert(["b"]) == 1

    def test_scan_live(self):
        heap = RowHeap()
        heap.insert(["a"])
        heap.insert(["b"])
        assert [row for _, row in heap.scan_live()] == [["a"], ["b"]]

    def test_counters(self):
        heap = RowHeap()
        heap.insert(["a"])
        heap.insert(["b"])
        assert heap.live_count == 2
        assert heap.dead_count == 0
        assert heap.physical_count == 2


class TestTombstones:
    def test_mark_dead_keeps_data(self):
        heap = RowHeap()
        rid = heap.insert(["a"])
        assert heap.mark_dead(rid) == ["a"]
        assert heap.get(rid) == ["a"]  # still readable pre-reclaim
        assert heap.get_live(rid) is None
        assert heap.live_count == 0
        assert heap.dead_count == 1

    def test_double_mark_dead_raises(self):
        heap = RowHeap()
        rid = heap.insert(["a"])
        heap.mark_dead(rid)
        with pytest.raises(KeyError):
            heap.mark_dead(rid)

    def test_dead_rows_skipped_by_scan(self):
        heap = RowHeap()
        heap.insert(["a"])
        rid = heap.insert(["b"])
        heap.mark_dead(rid)
        assert [row for _, row in heap.scan_live()] == [["a"]]
        assert list(heap.scan_dead()) == [rid]


class TestReclaim:
    def test_reclaim_frees_and_reuses_slot(self):
        heap = RowHeap()
        rid = heap.insert(["a"])
        heap.mark_dead(rid)
        heap.reclaim(rid)
        assert heap.physical_count == 0
        new_rid = heap.insert(["b"])
        assert new_rid == rid  # slot reused
        assert heap.get_live(new_rid) == ["b"]

    def test_reclaim_live_row_raises(self):
        heap = RowHeap()
        rid = heap.insert(["a"])
        with pytest.raises(KeyError):
            heap.reclaim(rid)

    def test_get_after_reclaim_raises(self):
        heap = RowHeap()
        rid = heap.insert(["a"])
        heap.mark_dead(rid)
        heap.reclaim(rid)
        with pytest.raises(KeyError):
            heap.get(rid)

    def test_dead_count_excludes_reclaimed(self):
        heap = RowHeap()
        rids = [heap.insert([i]) for i in range(4)]
        for rid in rids[:3]:
            heap.mark_dead(rid)
        heap.reclaim(rids[0])
        assert heap.dead_count == 2
        assert heap.live_count == 1
        assert heap.physical_count == 3
