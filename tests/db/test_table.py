"""Table-level tests: constraints, indexes, MVCC vs eager storage, vacuum."""

import pytest

from repro.db.errors import DBError, DuplicateKeyError, NoSuchIndexError
from repro.db.schema import Column, TableSchema
from repro.db.table import Table
from repro.db.types import INT, VARCHAR


def make_table(eager=True) -> Table:
    schema = TableSchema(
        name="t",
        columns=[
            Column("id", INT, nullable=False, autoincrement=True),
            Column("name", VARCHAR(50), nullable=False),
            Column("ref", INT),
        ],
        primary_key=("id",),
        unique=[("name",)],
    )
    return Table(schema, eager_index_cleanup=eager)


class TestInsert:
    def test_autoincrement_assigned(self):
        t = make_table()
        rid1, row1 = t.insert({"name": "a"})
        rid2, row2 = t.insert({"name": "b"})
        assert row1[0] == 1 and row2[0] == 2

    def test_unique_violation(self):
        t = make_table()
        t.insert({"name": "a"})
        with pytest.raises(DuplicateKeyError):
            t.insert({"name": "a"})

    def test_pk_violation_on_explicit_id(self):
        t = make_table()
        t.insert({"id": 5, "name": "a"})
        with pytest.raises(DuplicateKeyError):
            t.insert({"id": 5, "name": "b"})

    def test_insert_maintains_indexes(self):
        t = make_table()
        t.insert({"name": "a", "ref": 1})
        assert len(t.lookup_equal(("name",), ("a",))) == 1


class TestDelete:
    def test_delete_removes_row(self):
        t = make_table()
        rid, _ = t.insert({"name": "a"})
        t.delete_rid(rid)
        assert t.row_count == 0
        assert t.lookup_equal(("name",), ("a",)) == []

    def test_eager_delete_reclaims(self):
        t = make_table(eager=True)
        rid, _ = t.insert({"name": "a"})
        t.delete_rid(rid)
        assert t.dead_tuple_count == 0
        # Name is reusable immediately.
        t.insert({"name": "a"})

    def test_mvcc_delete_leaves_dead_tuple(self):
        t = make_table(eager=False)
        rid, _ = t.insert({"name": "a"})
        t.delete_rid(rid)
        assert t.dead_tuple_count == 1
        # Reinsert works: uniqueness check filters dead entries.
        t.insert({"name": "a"})
        assert t.row_count == 1


class TestUpdate:
    def test_update_changes_value(self):
        t = make_table()
        rid, _ = t.insert({"name": "a", "ref": 1})
        new_rid, row = t.update_rid(rid, {"ref": 2})
        assert row[2] == 2
        assert t.lookup_equal(("name",), ("a",))[0][1][2] == 2

    def test_update_to_conflicting_unique_restores_row(self):
        t = make_table()
        t.insert({"name": "a"})
        rid, _ = t.insert({"name": "b"})
        with pytest.raises(DuplicateKeyError):
            t.update_rid(rid, {"name": "a"})
        # Old row restored.
        assert len(t.lookup_equal(("name",), ("b",))) == 1

    def test_update_same_unique_value_allowed(self):
        t = make_table()
        rid, _ = t.insert({"name": "a", "ref": 1})
        t.update_rid(rid, {"name": "a", "ref": 9})
        assert t.row_count == 1


class TestIndexes:
    def test_create_hash_index_backfills(self):
        t = make_table()
        t.insert({"name": "a", "ref": 7})
        t.create_hash_index("by_ref", ["ref"])
        assert len(t.lookup_equal(("ref",), (7,))) == 1

    def test_create_ordered_index_backfills(self):
        t = make_table()
        t.insert({"name": "abc"})
        t.insert({"name": "abd"})
        t.insert({"name": "xyz"})
        t.create_ordered_index("by_name", "name")
        assert len(t.prefix_lookup("name", "ab")) == 2

    def test_duplicate_index_name_rejected(self):
        t = make_table()
        t.create_hash_index("i", ["ref"])
        with pytest.raises(DBError):
            t.create_ordered_index("i", "ref")

    def test_get_index_missing(self):
        with pytest.raises(NoSuchIndexError):
            make_table().get_index("nope")

    def test_lookup_without_index_falls_back_to_scan(self):
        t = make_table()
        t.insert({"name": "a", "ref": 3})
        assert len(t.lookup_equal(("ref",), (3,))) == 1

    def test_prefix_lookup_without_index_falls_back_to_scan(self):
        t = make_table()
        t.insert({"name": "abc"})
        assert len(t.prefix_lookup("name", "ab")) == 1


class TestVacuum:
    def test_vacuum_reclaims_dead_tuples(self):
        t = make_table(eager=False)
        rids = [t.insert({"name": f"n{i}"})[0] for i in range(10)]
        for rid in rids:
            t.delete_rid(rid)
        assert t.dead_tuple_count == 10
        assert t.vacuum() == 10
        assert t.dead_tuple_count == 0

    def test_vacuum_removes_dead_index_entries(self):
        t = make_table(eager=False)
        rid, _ = t.insert({"name": "a"})
        t.delete_rid(rid)
        t.insert({"name": "a"})
        before = t.stats.dead_index_hits
        t.vacuum()
        t.lookup_equal(("name",), ("a",))
        # After vacuum the lookup hits no dead entries.
        assert t.stats.dead_index_hits == before

    def test_dead_index_hits_grow_with_churn(self):
        """The mechanism behind the paper's Figure 8 sawtooth."""
        t = make_table(eager=False)
        for round_no in range(5):
            rid, _ = t.insert({"name": "hot"})
            t.delete_rid(rid)
        t.insert({"name": "hot"})
        # The final insert had to skip 5 dead entries for key "hot".
        assert t.stats.dead_index_hits >= 5
