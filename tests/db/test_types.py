"""Column type coercion tests."""

import datetime

import pytest

from repro.db.errors import TypeMismatchError
from repro.db.types import (
    FLOAT,
    INT,
    TIMESTAMP,
    FloatType,
    IntType,
    TimestampType,
    VARCHAR,
    VarcharType,
    type_from_sql,
)


class TestIntType:
    def test_accepts_int(self):
        assert INT.coerce(42) == 42

    def test_accepts_negative(self):
        assert INT.coerce(-7) == -7

    def test_accepts_integral_float(self):
        assert INT.coerce(3.0) == 3

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce(3.5)

    def test_accepts_numeric_string(self):
        assert INT.coerce("123") == 123

    def test_rejects_non_numeric_string(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce("abc")

    def test_bool_coerces_to_int(self):
        assert INT.coerce(True) == 1

    def test_rejects_none(self):
        with pytest.raises(TypeMismatchError):
            INT.coerce(None)


class TestFloatType:
    def test_accepts_float(self):
        assert FLOAT.coerce(2.5) == 2.5

    def test_accepts_int(self):
        assert FLOAT.coerce(2) == 2.0
        assert isinstance(FLOAT.coerce(2), float)

    def test_accepts_string(self):
        assert FLOAT.coerce("1.5e3") == 1500.0

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            FLOAT.coerce(True)

    def test_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            FLOAT.coerce("x")


class TestVarcharType:
    def test_accepts_string_within_limit(self):
        assert VARCHAR(10).coerce("hello") == "hello"

    def test_rejects_overlong(self):
        with pytest.raises(TypeMismatchError):
            VARCHAR(3).coerce("hello")

    def test_boundary_length_allowed(self):
        assert VARCHAR(5).coerce("12345") == "12345"

    def test_rejects_non_string(self):
        with pytest.raises(TypeMismatchError):
            VARCHAR(10).coerce(5)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            VarcharType(0)

    def test_default_length_250(self):
        assert VARCHAR().max_length == 250


class TestTimestampType:
    def test_accepts_float_seconds(self):
        assert TIMESTAMP.coerce(100.5) == 100.5

    def test_accepts_datetime(self):
        dt = datetime.datetime(2004, 6, 7, 12, 0, 0)
        assert TIMESTAMP.coerce(dt) == dt.timestamp()

    def test_accepts_iso_string(self):
        expected = datetime.datetime(2004, 6, 7).timestamp()
        assert TIMESTAMP.coerce("2004-06-07") == expected

    def test_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.coerce(False)

    def test_rejects_bad_string(self):
        with pytest.raises(TypeMismatchError):
            TIMESTAMP.coerce("not a date")


class TestTypeFromSql:
    def test_int_with_width(self):
        t = type_from_sql("INT", 11)
        assert isinstance(t, IntType) and t.display_width == 11

    def test_integer_alias(self):
        assert isinstance(type_from_sql("integer", None), IntType)

    def test_varchar(self):
        t = type_from_sql("varchar", 250)
        assert isinstance(t, VarcharType) and t.max_length == 250

    def test_float_aliases(self):
        for name in ("FLOAT", "double", "REAL"):
            assert isinstance(type_from_sql(name, None), FloatType)

    def test_timestamp(self):
        assert isinstance(type_from_sql("TIMESTAMP", 14), TimestampType)

    def test_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            type_from_sql("BLOB", None)


class TestTypeEquality:
    def test_same_params_equal(self):
        assert VARCHAR(10) == VARCHAR(10)
        assert IntType(11) == IntType(11)

    def test_different_params_unequal(self):
        assert VARCHAR(10) != VARCHAR(20)

    def test_different_types_unequal(self):
        assert IntType() != FloatType()

    def test_hashable(self):
        assert len({VARCHAR(10), VARCHAR(10), VARCHAR(20)}) == 2
