"""Write-ahead log: encoding, flush policies, durability, recovery."""

import pytest

from repro.db.wal import (
    InMemoryLogDevice,
    OP_DELETE,
    OP_INSERT,
    WALRecord,
    WriteAheadLog,
    decode_records,
    encode_record,
)


class TestRecordCodec:
    def roundtrip(self, payload):
        record = WALRecord(7, OP_INSERT, "t_lfn", tuple(payload))
        decoded = list(decode_records(encode_record(record)))
        assert decoded == [record]

    def test_scalar_types(self):
        self.roundtrip([1, "name", 2.5, None, True, False])

    def test_unicode(self):
        self.roundtrip(["lfn-ünïcode-データ"])

    def test_empty_payload(self):
        self.roundtrip([])

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            encode_record(WALRecord(1, OP_INSERT, "t", (object(),)))

    def test_truncated_tail_ignored(self):
        record = encode_record(WALRecord(1, OP_INSERT, "t", ("a",)))
        # Torn write: last 3 bytes missing.
        decoded = list(decode_records(record + record[:-3]))
        assert len(decoded) == 1

    def test_multiple_records_in_order(self):
        data = b"".join(
            encode_record(WALRecord(i, OP_DELETE, "t", (i,))) for i in range(5)
        )
        assert [r.lsn for r in decode_records(data)] == list(range(5))


class TestFlushPolicies:
    def test_flush_on_commit_syncs_every_record(self):
        device = InMemoryLogDevice(sync_latency=0.0)
        wal = WriteAheadLog(device, flush_on_commit=True)
        for i in range(5):
            wal.log(OP_INSERT, "t", (i,))
        assert device.sync_count == 5
        assert len(wal.records()) == 5

    def test_periodic_flush_buffers(self):
        device = InMemoryLogDevice(sync_latency=0.0)
        fake_now = [0.0]
        wal = WriteAheadLog(
            device,
            flush_on_commit=False,
            flush_interval=10.0,
            max_buffered_records=100,
            clock=lambda: fake_now[0],
        )
        for i in range(5):
            wal.log(OP_INSERT, "t", (i,))
        assert device.sync_count == 0
        # Durable view is empty until a flush happens.
        assert wal.records() == []

    def test_buffer_threshold_triggers_sync(self):
        device = InMemoryLogDevice(sync_latency=0.0)
        wal = WriteAheadLog(
            device, flush_on_commit=False, max_buffered_records=3,
            flush_interval=1e9,
        )
        for i in range(3):
            wal.log(OP_INSERT, "t", (i,))
        assert device.sync_count == 1

    def test_interval_triggers_sync(self):
        device = InMemoryLogDevice(sync_latency=0.0)
        fake_now = [0.0]
        wal = WriteAheadLog(
            device,
            flush_on_commit=False,
            flush_interval=5.0,
            max_buffered_records=10_000,
            clock=lambda: fake_now[0],
        )
        wal.log(OP_INSERT, "t", (1,))
        assert device.sync_count == 0
        fake_now[0] = 6.0
        wal.log(OP_INSERT, "t", (2,))
        assert device.sync_count == 1

    def test_explicit_flush(self):
        device = InMemoryLogDevice(sync_latency=0.0)
        wal = WriteAheadLog(device, flush_on_commit=False, flush_interval=1e9)
        wal.log(OP_INSERT, "t", (1,))
        wal.flush()
        assert len(wal.records()) == 1

    def test_unsynced_records_lost_in_crash(self):
        """Flush-disabled mode risks losing the buffered tail (§5.1)."""
        device = InMemoryLogDevice(sync_latency=0.0)
        wal = WriteAheadLog(
            device, flush_on_commit=False, flush_interval=1e9,
            max_buffered_records=100,
        )
        wal.log(OP_INSERT, "t", (1,))
        wal.flush()
        wal.log(OP_INSERT, "t", (2,))  # never synced
        assert [r.payload for r in wal.records()] == [(1,)]

    def test_lsns_monotonic(self):
        wal = WriteAheadLog(InMemoryLogDevice(sync_latency=0.0))
        lsns = [wal.log(OP_INSERT, "t", (i,)) for i in range(10)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 10


class TestSyncLatency:
    def test_sync_latency_charged_per_commit(self):
        slept = []
        device = InMemoryLogDevice(sync_latency=0.01, sleep=slept.append)
        wal = WriteAheadLog(device, flush_on_commit=True)
        for i in range(3):
            wal.log(OP_INSERT, "t", (i,))
        assert slept == [0.01, 0.01, 0.01]

    def test_no_latency_when_buffering(self):
        slept = []
        device = InMemoryLogDevice(sync_latency=0.01, sleep=slept.append)
        wal = WriteAheadLog(
            device, flush_on_commit=False, flush_interval=1e9,
            max_buffered_records=100,
        )
        wal.log(OP_INSERT, "t", (1,))
        assert slept == []


class TestFileDevice:
    def test_file_roundtrip(self, tmp_path):
        from repro.db.wal import FileLogDevice

        path = str(tmp_path / "wal.log")
        device = FileLogDevice(path)
        wal = WriteAheadLog(device, flush_on_commit=True)
        wal.log(OP_INSERT, "t", ("hello", 1))
        records = wal.records()
        device.close()
        assert records[0].payload == ("hello", 1)
