"""Distributed trace assembly over a live 2-shard + mirror cluster.

One ``query_wildcard`` through the combined client fans out to every
shard (mirror-first), so a single trace id crosses the client and at
least two server processes.  The shared in-process tracer is partitioned
into per-node feeds with ``tracer_source(..., node=...)`` — each feed
models one process's sink — and the :class:`TraceAssembler` must stitch
them back into one tree whose critical path accounts for (almost) all of
the root span's wall time.
"""

from __future__ import annotations

import io
import json
import random

import pytest

from repro.cli import main
from repro.cluster import CombinedClient, ShardMap
from repro.core.client import connect
from repro.core.config import ServerConfig, ServerRole
from repro.core.server import RLSServer
from repro.obs.assemble import TraceAssembler, TraceSource, tracer_source
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import SpanSink, Tracer, install_tracer

ENTRIES = 24
SHARDS = ("dtr-s0", "dtr-s1")
MIRROR = "dtr-s0-m0"
ALL_NODES = ("dtr-s0", MIRROR, "dtr-s1")


@pytest.fixture
def traced_cluster():
    tracer = Tracer(sink=SpanSink())
    install_tracer(tracer)
    smap = ShardMap(shards=SHARDS, mirrors={"dtr-s0": (MIRROR,)})
    servers = {}
    try:
        servers[MIRROR] = RLSServer(
            ServerConfig(
                name=MIRROR,
                role=ServerRole.LRC,
                mirror_of="dtr-s0",
                cluster=smap,
                sync_latency=0.0,
                slow_query_threshold=1e-9,  # retain every statement
            )
        ).start()
        for shard in smap.shards:
            servers[shard] = RLSServer(
                ServerConfig(
                    name=shard,
                    role=ServerRole.LRC,
                    mirrors=smap.mirrors_of(shard),
                    cluster=smap,
                    sync_latency=0.0,
                    slow_query_threshold=1e-9,
                )
            ).start()
        cc = CombinedClient(
            smap, rng=random.Random(11), metrics=MetricsRegistry()
        )
        pairs = [(f"dtr-lfn{i:03d}", f"pfn://dtr/{i}") for i in range(ENTRIES)]
        assert cc.bulk_create(pairs) == []
        with connect("dtr-s0") as direct:
            direct.mirror_sync()
        yield smap, servers, tracer, cc, pairs
        cc.close()
    finally:
        for server in servers.values():
            server.stop()
        install_tracer(None)


def scatter_trace_id(tracer, cc):
    """Run one wildcard scatter and return its trace id."""
    assert len(cc.query_wildcard("dtr-lfn*")) == ENTRIES
    for tid in reversed(tracer.trace_ids()):
        if any(s.name == "cluster.scatter" for s in tracer.spans(tid)):
            return tid
    raise AssertionError("no cluster.scatter trace recorded")


def per_node_sources(tracer, nodes=ALL_NODES):
    """Partition the shared tracer into one feed per modelled process."""

    def client_fetch(tid):
        return [s for s in tracer.fragments(tid) if "node" not in s.tags]

    sources = [TraceSource(name="client", fetch=client_fetch)]
    sources.extend(tracer_source(n, tracer, node=n) for n in nodes)
    return sources


class TestStitchedTree:
    def test_one_trace_spans_three_process_sinks(self, traced_cluster):
        smap, servers, tracer, cc, pairs = traced_cluster
        tid = scatter_trace_id(tracer, cc)
        trace = TraceAssembler(per_node_sources(tracer)).assemble(tid)

        # The scatter read crossed the client plus one endpoint per
        # shard (mirror-first on dtr-s0): >= 3 distinct process feeds.
        contributing = {n for n, c in trace.nodes.items() if c > 0}
        assert "client" in contributing
        assert len(contributing) >= 3, trace.nodes
        assert trace.missing == {} and trace.gaps == []

        roots = trace.tree()
        assert len(roots) == 1
        assert roots[0]["span"].name == "cluster.scatter"
        # Every shard's rpc.handle is nested somewhere under the root.
        handled = {
            s.tags["node"] for s in trace.spans if s.name == "rpc.handle"
        }
        assert handled == {MIRROR, "dtr-s1"}, handled

    def test_critical_path_accounts_for_root_duration(self, traced_cluster):
        smap, servers, tracer, cc, pairs = traced_cluster
        tid = scatter_trace_id(tracer, cc)
        payload = (
            TraceAssembler(per_node_sources(tracer)).assemble(tid).to_dict()
        )
        # Acceptance: segment durations sum to the root duration within
        # 5% (exact here — one perf_counter clock).
        assert payload["root_duration"] > 0
        assert abs(payload["coverage"] - 1.0) <= 0.05, payload["coverage"]
        kinds = {seg["kind"] for seg in payload["critical_path"]}
        assert "client.routing" in kinds
        assert "net.wait" in kinds
        assert "server.handle" in kinds
        # Server-side segments inherit the handling node's identity.
        server_time = [
            seg
            for seg in payload["critical_path"]
            if seg["kind"] == "server.handle"
        ]
        assert {seg["node"] for seg in server_time} <= set(ALL_NODES)

    def test_dropped_fragments_reported_not_fatal(self, traced_cluster):
        smap, servers, tracer, cc, pairs = traced_cluster
        tid = scatter_trace_id(tracer, cc)
        full = TraceAssembler(per_node_sources(tracer)).assemble(tid)

        def boom(_tid):
            raise ConnectionError("process restarted")

        # The mirror's feed is gone: its spans drop out, the node is
        # reported missing, and assembly still succeeds.
        broken = [
            s if s.name != MIRROR else TraceSource(name=MIRROR, fetch=boom)
            for s in per_node_sources(tracer)
        ]
        partial = TraceAssembler(broken).assemble(tid)
        assert MIRROR in partial.missing
        assert "process restarted" in partial.missing[MIRROR]
        assert len(partial.spans) < len(full.spans)

        # Server-only view (client feed lost): the rpc.handle fragments
        # reference never-gathered client spans -> explicit gap markers.
        server_only = TraceAssembler(
            [tracer_source(n, tracer, node=n) for n in ALL_NODES]
        ).assemble(tid)
        assert server_only.gaps, "expected gap markers for missing parents"
        gap_roots = [n for n in server_only.tree() if n["gap"]]
        assert gap_roots and all(n["children"] for n in gap_roots)


class TestSpanTagsAgreeWithMetrics:
    def test_read_failover_tags_match_counters(self, traced_cluster):
        smap, servers, tracer, cc, pairs = traced_cluster
        lfn = next(p[0] for p in pairs if cc.ring.owner(p[0]) == "dtr-s0")

        # Healthy path: the mirror serves, no failover.
        cc.get_mappings(lfn)
        span = tracer.find_spans("cluster.read")[-1]
        assert span.tags["shard"] == "dtr-s0"
        assert span.tags["endpoint"] == MIRROR
        assert span.tags["mirror"] is True
        assert span.tags["failover"] == 0

        # Kill the mirror: the read fails over to the shard master, and
        # the span tags must agree with the routing counters.
        servers[MIRROR].stop()
        before = cc.metrics.snapshot().counters
        cc.get_mappings(lfn)
        after = cc.metrics.snapshot().counters
        span = tracer.find_spans("cluster.read")[-1]
        assert span.tags["endpoint"] == "dtr-s0"
        assert span.tags["mirror"] is False
        fail_key = "cluster.failovers{shard=dtr-s0}"
        route_key = "cluster.routes{kind=read,shard=dtr-s0}"
        assert span.tags["failover"] == (
            after.get(fail_key, 0) - before.get(fail_key, 0)
        ) == 1
        assert after[route_key] - before.get(route_key, 0) == 1


class TestCLISurfaces:
    def test_rls_trace_distributed_critical_path(self, traced_cluster):
        smap, servers, tracer, cc, pairs = traced_cluster
        tid = scatter_trace_id(tracer, cc)

        buf = io.StringIO()
        rc = main(
            [
                "trace", "--server", "dtr-s0", tid,
                "--distributed", "--critical-path",
            ],
            out=buf,
        )
        text = buf.getvalue()
        assert rc == 0, text
        assert "cluster.scatter" in text
        assert "rpc.handle" in text
        assert "critical path" in text and "by kind:" in text

        jbuf = io.StringIO()
        assert main(
            ["trace", "--server", "dtr-s0", tid, "--distributed", "--json"],
            out=jbuf,
        ) == 0
        payload = json.loads(jbuf.getvalue())
        assert payload["trace_id"] == tid
        assert abs(payload["coverage"] - 1.0) <= 0.05
        # Client-side assembly asked every endpoint in the shard map.
        assert set(payload["nodes"]) == set(ALL_NODES)

    def test_slowlog_ids_paste_into_rls_trace(self, traced_cluster):
        smap, servers, tracer, cc, pairs = traced_cluster
        scatter_trace_id(tracer, cc)

        buf = io.StringIO()
        assert main(["slowlog", "--server", "dtr-s1"], out=buf) == 0
        entries = [
            line for line in buf.getvalue().splitlines() if "trace=" in line
        ]
        assert entries, buf.getvalue()
        linked = next(
            line for line in entries if "trace=- " not in line
        )
        trace_ref = linked.split("trace=")[1].split()[0]
        span_ref = linked.split("span=")[1].split()[0]
        assert trace_ref != "-" and span_ref != "-"

        # Both printed ids resolve: the trace id directly, the span id
        # through the server's resolve_trace.
        for ref in (trace_ref, span_ref):
            out = io.StringIO()
            assert main(["trace", "--server", "dtr-s1", ref], out=out) == 0
            assert f"trace {trace_ref}:" in out.getvalue()
