"""End-to-end integration tests: full deployments, soft-state lifecycle,
client recovery from stale RLI data, concurrent load, TCP deployments."""

import threading
import time

import pytest

from repro.core.client import connect, connect_tcp_server
from repro.core.config import ServerConfig, ServerRole
from repro.core.errors import MappingNotFoundError
from repro.core.server import RLSServer
from repro.core.updates import UpdatePolicy


class TestTwoTierDeployment:
    def test_client_discovers_replica_via_rli(self, make_server):
        """The paper's discovery flow (§3.2): query RLI -> get LRC names ->
        query those LRCs -> get target names."""
        rli = make_server(ServerRole.RLI)
        lrcs = [make_server(ServerRole.LRC) for _ in range(3)]
        # lfn 'data42' is replicated at sites 0 and 2.
        for i in (0, 2):
            c = connect(lrcs[i].config.name)
            c.create("data42", f"gsiftp://site{i}/data42")
            c.add_rli(rli.config.name)
            c.trigger_full_update()
            c.close()

        rli_client = connect(rli.config.name)
        holders = rli_client.rli_query("data42")
        assert sorted(holders) == sorted(
            [lrcs[0].config.name, lrcs[2].config.name]
        )
        replicas = []
        for holder in holders:
            lrc_client = connect(holder)
            replicas.extend(lrc_client.get_mappings("data42"))
            lrc_client.close()
        assert sorted(replicas) == [
            "gsiftp://site0/data42",
            "gsiftp://site2/data42",
        ]
        rli_client.close()

    def test_stale_rli_recovery_pattern(self, make_server):
        """§3.2: after a delete, the RLI may return stale pointers until the
        next update; 'an application program must be sufficiently robust to
        recover from this situation and query for another replica'."""
        rli = make_server(ServerRole.RLI)
        lrc_a = make_server(ServerRole.LRC)
        lrc_b = make_server(ServerRole.LRC)
        for server in (lrc_a, lrc_b):
            c = connect(server.config.name)
            c.create("volatile", f"pfn-at-{server.config.name}")
            c.add_rli(rli.config.name)
            c.trigger_full_update()
            c.close()

        # Delete from A but don't push an update: RLI is now stale.
        ca = connect(lrc_a.config.name)
        ca.delete("volatile", f"pfn-at-{lrc_a.config.name}")
        ca.close()

        holders = connect(rli.config.name).rli_query("volatile")
        assert len(holders) == 2  # stale answer, by design
        found = []
        for holder in holders:
            try:
                found.extend(connect(holder).get_mappings("volatile"))
            except MappingNotFoundError:
                continue  # the robust-client recovery path
        assert found == [f"pfn-at-{lrc_b.config.name}"]

    def test_soft_state_lifecycle(self, make_server):
        """Entries expire without refresh; refreshed entries survive."""
        rli = make_server(ServerRole.RLI, rli_timeout=0.2)
        lrc = make_server(ServerRole.LRC)
        c = connect(lrc.config.name)
        c.create("ttl-lfn", "p")
        c.add_rli(rli.config.name)
        c.trigger_full_update()
        rc = connect(rli.config.name)
        assert rc.rli_query("ttl-lfn") == [lrc.config.name]
        time.sleep(0.25)
        assert rc.expire_once() == 1
        with pytest.raises(MappingNotFoundError):
            rc.rli_query("ttl-lfn")
        # Next full update restores it.
        c.trigger_full_update()
        assert rc.rli_query("ttl-lfn") == [lrc.config.name]
        c.close()
        rc.close()

    def test_immediate_mode_reduces_staleness(self, make_server):
        """§3.3: incremental updates propagate recent changes without a
        full update."""
        rli = make_server(ServerRole.RLI)
        lrc = make_server(
            ServerRole.LRC,
            updates=UpdatePolicy(
                immediate_interval=0.05,
                immediate_count_threshold=1000,
                full_interval=3600.0,
                bloom_expected_entries=1024,
            ),
        )
        c = connect(lrc.config.name)
        c.add_rli(rli.config.name)
        c.trigger_full_update()  # establish baseline
        c.create("hot-lfn", "p")
        deadline = time.time() + 5.0
        manager = lrc.update_manager
        while time.time() < deadline:
            manager.tick()
            try:
                if connect(rli.config.name).rli_query("hot-lfn"):
                    break
            except MappingNotFoundError:
                time.sleep(0.02)
        else:
            pytest.fail("immediate-mode update never propagated")
        c.close()


class TestEsgStyleFullMesh:
    def test_four_node_fully_connected(self, make_server):
        """§6: ESG 'deploys four RLS servers that function as both LRCs and
        RLIs in a fully-connected configuration'."""
        servers = [make_server(ServerRole.BOTH) for _ in range(4)]
        clients = [connect(s.config.name) for s in servers]
        for i, c in enumerate(clients):
            c.create(f"esg-file{i}", f"pfn{i}")
            for target in servers:
                c.add_rli(target.config.name)
            c.trigger_full_update()
        # Every node's RLI must know every file's holder.
        for c in clients:
            for i in range(4):
                assert c.rli_query(f"esg-file{i}") == [servers[i].config.name]
        for c in clients:
            c.close()


class TestConcurrency:
    def test_concurrent_writers_distinct_names(self, make_server):
        server = make_server(ServerRole.LRC)
        errors = []

        def writer(tid):
            c = connect(server.config.name)
            for i in range(25):
                try:
                    c.create(f"cc-{tid}-{i}", f"p-{tid}-{i}")
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
            c.close()

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert server.lrc.lfn_count() == 100

    def test_concurrent_create_same_name_exactly_one_wins(self, make_server):
        server = make_server(ServerRole.LRC)
        outcomes = []
        barrier = threading.Barrier(4)

        def racer(tid):
            c = connect(server.config.name)
            barrier.wait()
            try:
                c.create("contested", f"p{tid}")
                outcomes.append("win")
            except Exception:
                outcomes.append("lose")
            c.close()

        threads = [threading.Thread(target=racer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes.count("win") == 1
        assert server.lrc.get_mappings("contested")

    def test_reads_concurrent_with_writes(self, make_server):
        server = make_server(ServerRole.LRC)
        c0 = connect(server.config.name)
        c0.bulk_create([(f"rw{i}", f"p{i}") for i in range(50)])
        c0.close()
        stop = threading.Event()
        read_errors = []

        def reader():
            c = connect(server.config.name)
            while not stop.is_set():
                try:
                    c.get_mappings("rw25")
                except Exception as exc:  # pragma: no cover
                    read_errors.append(exc)
            c.close()

        t = threading.Thread(target=reader)
        t.start()
        c = connect(server.config.name)
        for i in range(50, 100):
            c.create(f"rw{i}", f"p{i}")
        stop.set()
        t.join()
        c.close()
        assert read_errors == []


class TestTCPDeployment:
    def test_distributed_over_sockets(self):
        """LRC and RLI in the same process but communicating via real TCP."""
        rli_server = RLSServer(
            ServerConfig(name="tcp-rli", role=ServerRole.RLI, tcp=True,
                         sync_latency=0.0)
        ).start()
        lrc_server = RLSServer(
            ServerConfig(name="tcp-lrc", role=ServerRole.LRC, tcp=True,
                         sync_latency=0.0)
        ).start()
        try:
            host, port = lrc_server.tcp_address
            client = connect_tcp_server(host, port)
            client.create("tcp-dist-lfn", "tcp-dist-pfn")
            client.add_rli("tcp-rli")  # resolved via in-process registry
            client.trigger_full_update()
            rhost, rport = rli_server.tcp_address
            rli_client = connect_tcp_server(rhost, rport)
            assert rli_client.rli_query("tcp-dist-lfn") == ["tcp-lrc"]
            client.close()
            rli_client.close()
        finally:
            lrc_server.stop()
            rli_server.stop()
