"""Smoke-run the example scripts as real subprocesses.

Each example must exit 0 and print its final ``done`` marker.  The WAN
study is exercised at reduced scope through its module API instead of the
full CLI run (the full sweep takes ~a minute).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "ligo_deployment.py",
    "earth_system_grid.py",
    "pegasus_workflow.py",
    "secure_deployment.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip().endswith("done")


def test_wan_update_study_components():
    """The WAN study's building blocks at reduced scope."""
    from repro.sim.models import (
        bloom_table3_row,
        bloom_update_times_wan,
        uncompressed_update_times,
    )

    assert uncompressed_update_times(10_000, 2, rounds=2).mean_update_time > 0
    assert bloom_update_times_wan(100_000, 2, rounds=3).mean_update_time > 0
    row = bloom_table3_row(100_000, generation_sample=10_000)
    assert row.filter_bits == 1_000_000


def test_examples_directory_has_no_strays():
    """Every example file is either tested here or the WAN study."""
    scripts = {p.name for p in EXAMPLES.glob("*.py")}
    assert scripts == set(FAST_EXAMPLES) | {"wan_update_study.py"}
