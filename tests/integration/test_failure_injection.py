"""Failure-injection tests: dead servers, torn frames, oversized payloads,
hierarchy daemons surviving flaky parents."""

import socket
import struct
import threading
import time

import pytest

from repro.core.client import connect, connect_tcp_server
from repro.core.config import ServerConfig, ServerRole
from repro.core.hierarchy import HierarchicalUpdater, HierarchyThread
from repro.core.membership import resolve_sink
from repro.core.server import RLSServer
from repro.net.errors import ProtocolError, TransportClosedError
from repro.net.messages import Hello, Request
from repro.net.rpc import RPCServer
from repro.net.transport import TCPServerTransport, connect_tcp


class TestDeadServer:
    def test_call_after_server_stop_raises(self, make_server):
        server = make_server(ServerRole.BOTH)
        client = connect(server.config.name)
        client.create("x", "p")
        server.stop()
        with pytest.raises(TransportClosedError):
            client.get_mappings("x")

    def test_tcp_peer_disappears(self):
        server = RLSServer(
            ServerConfig(name="dying-tcp", role=ServerRole.BOTH, tcp=True,
                         sync_latency=0.0)
        ).start()
        host, port = server.tcp_address
        client = connect_tcp_server(host, port)
        client.create("x", "p")
        server.stop()
        with pytest.raises((TransportClosedError, OSError)):
            for _ in range(5):  # the close may race the next read
                client.get_mappings("x")
                time.sleep(0.05)

    def test_update_to_dead_rli_fails_but_lrc_survives(self, make_server):
        rli = make_server(ServerRole.RLI)
        lrc = make_server(ServerRole.LRC)
        client = connect(lrc.config.name)
        client.create("x", "p")
        client.add_rli(rli.config.name)
        rli.stop()
        with pytest.raises(Exception):
            client.trigger_full_update()
        # The LRC itself still answers.
        assert client.get_mappings("x") == ["p"]
        client.close()


class TestMalformedWire:
    def test_garbage_frame_closes_connection_not_server(self):
        rpc = RPCServer()
        rpc.register("echo", lambda ctx, args: list(args))
        tcp = TCPServerTransport(rpc)
        try:
            # Send a garbage frame by hand.
            sock = socket.create_connection((tcp.host, tcp.port), timeout=5)
            sock.sendall(struct.pack("<I", 5) + b"junk!")
            sock.close()
            # Server still serves well-formed clients.
            channel = connect_tcp(tcp.host, tcp.port)
            response = channel.request(Request("echo", (1,)))
            assert response.ok and response.value == [1]
            channel.close()
        finally:
            tcp.close()

    def test_oversized_frame_rejected(self):
        rpc = RPCServer()
        rpc.register("echo", lambda ctx, args: list(args))
        tcp = TCPServerTransport(rpc)
        try:
            sock = socket.create_connection((tcp.host, tcp.port), timeout=5)
            # Claim a frame bigger than the 256 MiB limit as the handshake.
            sock.sendall(struct.pack("<I", 1 << 31))
            time.sleep(0.1)  # let the server reject and drop us
            sock.close()
            # The listener and other connections stay healthy.
            channel = connect_tcp(tcp.host, tcp.port)
            assert channel.request(Request("echo", (7,))).value == [7]
            channel.close()
        finally:
            tcp.close()

    def test_truncated_handshake(self):
        rpc = RPCServer()
        tcp = TCPServerTransport(rpc)
        try:
            sock = socket.create_connection((tcp.host, tcp.port), timeout=5)
            sock.sendall(struct.pack("<I", 100))  # promise 100 bytes
            sock.sendall(b"short")  # deliver 5, then hang up
            sock.close()
            # Server must remain healthy.
            channel = connect_tcp(tcp.host, tcp.port)
            channel.close()
        finally:
            tcp.close()


class TestHierarchyResilience:
    def test_hierarchy_thread_forwards_and_survives_parent_flaps(self, make_server):
        parent = make_server(ServerRole.RLI)
        child = make_server(ServerRole.RLI)
        child.rli.apply_full_update("leaf-lrc", ["flap-lfn"])

        calls = {"fail": True}

        def flaky_resolver(name):
            if calls["fail"]:
                calls["fail"] = False
                raise ConnectionError("parent briefly unreachable")
            return resolve_sink(name)

        updater = HierarchicalUpdater(
            child.rli, flaky_resolver, parents=[parent.config.name]
        )
        thread = HierarchyThread(updater, interval=0.03)
        thread.start()
        try:
            deadline = time.time() + 5.0
            while time.time() < deadline:
                try:
                    if parent.rli.query("flap-lfn") == ["leaf-lrc"]:
                        break
                except Exception:
                    time.sleep(0.02)
            else:
                pytest.fail("hierarchy thread never recovered")
        finally:
            thread.stop()

    def test_forwarded_state_expires_without_refresh(self, make_server):
        """Parent treats forwarded entries as soft state too."""
        parent = make_server(ServerRole.RLI, rli_timeout=0.1)
        child = make_server(ServerRole.RLI)
        child.rli.apply_full_update("leaf", ["ttl-lfn"])
        HierarchicalUpdater(
            child.rli, resolve_sink, parents=[parent.config.name]
        ).forward_once()
        assert parent.rli.query("ttl-lfn") == ["leaf"]
        time.sleep(0.15)
        assert parent.rli.expire_once() >= 1


class TestConcurrentChannelUse:
    def test_tcp_channel_is_thread_safe(self):
        """One TCP channel shared by many threads must serialize correctly."""
        rpc = RPCServer()
        rpc.register("echo", lambda ctx, args: list(args))
        tcp = TCPServerTransport(rpc)
        try:
            channel = connect_tcp(tcp.host, tcp.port)
            errors = []

            def worker(tid):
                for i in range(50):
                    response = channel.request(Request("echo", (tid, i)))
                    if response.value != [tid, i]:
                        errors.append((tid, i, response.value))

            threads = [
                threading.Thread(target=worker, args=(t,)) for t in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            channel.close()
        finally:
            tcp.close()
