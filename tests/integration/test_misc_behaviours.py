"""Cross-cutting behaviours: Bloom false positives end-to-end, CLI error
paths, load driving over real TCP, codec depth."""

import io

import pytest

from repro.cli import main
from repro.core.bloom import BloomFilter, BloomParameters
from repro.core.client import connect_tcp_server
from repro.core.config import ServerConfig, ServerRole
from repro.core.server import RLSServer
from repro.net.codec import decode, encode
from repro.workload.driver import LoadDriver


class TestBloomFalsePositivesEndToEnd:
    def test_rli_returns_false_positive_and_lrc_corrects(self, make_server):
        """Force FPs with a saturated filter: the RLI over-reports (as the
        paper allows) and the authoritative LRC answer is still correct."""
        rli = make_server(ServerRole.RLI)
        # A deliberately tiny, saturated filter: high FP rate.
        params = BloomParameters(num_bits=1024, num_hashes=3)
        real_names = [f"real{i}" for i in range(400)]
        bf = BloomFilter.from_names(real_names, params)
        rli.rli.apply_bloom_update(
            "overfull-lrc", bf.to_bytes(), params.num_bits, params.num_hashes,
            len(real_names),
        )
        probes = [f"ghost{i}" for i in range(300)]
        fp_hits = 0
        for probe in probes:
            try:
                if rli.rli.query(probe):
                    fp_hits += 1
            except Exception:
                pass
        # A saturated 1024-bit filter with 400 entries must FP heavily.
        assert fp_hits > 30
        # The paper's contract: clients recover by asking the LRC, which
        # is authoritative and (here) simply has no such mapping.

    def test_fresh_filter_has_low_fp(self, make_server):
        rli = make_server(ServerRole.RLI)
        names = [f"ok{i}" for i in range(1000)]
        params = BloomParameters.for_entries(1000)
        bf = BloomFilter.from_names(names, params)
        rli.rli.apply_bloom_update(
            "sized-lrc", bf.to_bytes(), params.num_bits, params.num_hashes, 1000
        )
        fp = 0
        for i in range(1000):
            try:
                rli.rli.query(f"absent{i}")
                fp += 1
            except Exception:
                pass
        assert fp < 60  # ~1-2% expected


class TestCLIErrorPaths:
    def test_query_missing_name_exits_with_remote_error(self, make_server):
        server = make_server(ServerRole.LRC)
        out = io.StringIO()
        from repro.core.errors import MappingNotFoundError

        with pytest.raises(MappingNotFoundError):
            main(["query", "--server", server.config.name, "ghost"], out=out)

    def test_connect_to_unknown_server_fails(self):
        from repro.net.errors import TransportClosedError

        with pytest.raises(TransportClosedError):
            main(["admin", "--server", "no-such-endpoint", "ping"])

    def test_host_port_parsing(self):
        """--server host:port goes down the TCP path (and fails to connect
        to a port nothing listens on)."""
        with pytest.raises(OSError):
            main(["admin", "--server", "127.0.0.1:1", "ping"])

    def test_bad_role_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--role", "banana", "--run-seconds", "0"])


class TestLoadDriverOverTCP:
    def test_tcp_load(self):
        server = RLSServer(
            ServerConfig(
                name="tcp-load", role=ServerRole.LRC, tcp=True, sync_latency=0.0
            )
        ).start()
        try:
            host, port = server.tcp_address
            server.lrc.bulk_load((f"t{i}", f"p{i}") for i in range(50))
            driver = LoadDriver(
                server_name="ignored",
                clients=2,
                threads_per_client=2,
                total_operations=200,
                connect_fn=lambda name, cred: connect_tcp_server(host, port, cred),
            )
            result = driver.run(LoadDriver.query_op([f"t{i}" for i in range(50)]))
            assert result.errors == 0 and result.operations == 200
        finally:
            server.stop()


class TestCodecDepth:
    def test_deeply_nested_structure(self):
        value = 0
        for _ in range(50):
            value = [value]
        assert decode(encode(value)) == value

    def test_wide_dict(self):
        value = {f"k{i}": i for i in range(5000)}
        assert decode(encode(value)) == value

    def test_bloom_sized_bytes(self):
        blob = bytes(1_250_000)  # a 10M-bit filter payload
        assert decode(encode(blob)) == blob
