"""End-to-end profiler and flight-recorder surfaces: RPC, HTTP, CLI.

Covers the acceptance criteria for the observability PR: the
profile/threads/flight admin RPCs and their graceful-degradation
payloads, flight-event capture at the instrumentation sites (RPC
dispatch, update delivery, WAL flush), the automatic error dump with
span correlation, the HTTP gateway routes, and ``rls profile`` run
against a live TCP server under load.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.request

import pytest

from repro.cli import main
from repro.core.client import connect, connect_tcp_server
from repro.core.config import ServerConfig, ServerRole
from repro.core.lrc import LocalReplicaCatalog
from repro.core.server import RLSServer
from repro.core.updates import UpdateManager, UpdatePolicy
from repro.db.mysql_engine import MySQLEngine
from repro.db.odbc import Connection
from repro.net.http_gateway import HTTPGateway
from repro.core.errors import MappingNotFoundError
from repro.net.retry import RetryPolicy
from repro.obs.flight import FlightRecorder
from repro.obs.tracing import SpanSink, Tracer, install_tracer
from repro.testing import FailureSchedule, FlakySink
from repro.testing.faults import NullSink


def run_cli(*argv) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def http_get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read().decode())


@pytest.fixture
def traced():
    sink = SpanSink(latency_threshold=0.0)
    install_tracer(Tracer(sink=sink))
    yield sink
    install_tracer(None)


class TestAdminProfile:
    def test_disabled_by_default(self, make_server):
        server = make_server(ServerRole.BOTH)
        client = connect(server.config.name)
        try:
            payload = client.profile()
        finally:
            client.close()
        assert payload["enabled"] is False
        assert payload["hz"] == 0

    def test_cli_hints_when_disabled(self, make_server):
        server = make_server(ServerRole.BOTH)
        code, out = run_cli("profile", server.config.name)
        assert code == 1
        assert "profile_hz" in out

    def test_enabled_profiler_accumulates_samples(self, make_server):
        server = make_server(ServerRole.BOTH, profile_hz=500.0).start()
        client = connect(server.config.name)
        try:
            deadline = time.time() + 10.0
            payload = client.profile()
            while payload["samples"] == 0 and time.time() < deadline:
                time.sleep(0.01)
                payload = client.profile()
        finally:
            client.close()
        assert payload["enabled"] is True
        assert payload["hz"] == 500.0
        assert payload["samples"] > 0
        assert payload["roles"]
        assert sum(payload["profile"]["stacks"].values()) == payload["samples"]

    def test_admin_threads_payload(self, make_server):
        server = make_server(ServerRole.BOTH, profile_hz=100.0).start()
        client = connect(server.config.name)
        try:
            payload = client.threads()
        finally:
            client.close()
        assert payload["enabled"] is True
        assert payload["threads"], "a live server has threads to dump"
        for entry in payload["threads"]:
            assert {"ident", "name", "role", "frames", "idle"} <= set(entry)
        assert payload["detections"] == []  # healthy server: nothing stuck


class TestAdminFlight:
    def test_rpc_events_recorded_by_default(self, make_server):
        server = make_server(ServerRole.BOTH)
        client = connect(server.config.name)
        try:
            client.create("fl-lfn", "fl-pfn")
            payload = client.flight()
        finally:
            client.close()
        assert payload["enabled"] is True
        kinds = {(e["kind"], e["detail"]) for e in payload["events"]}
        assert ("rpc.in", "lrc_create_mapping") in kinds
        assert ("rpc.out", "lrc_create_mapping") in kinds

    def test_wal_flush_events(self, make_server):
        server = make_server(ServerRole.LRC, flush_on_commit=True)
        client = connect(server.config.name)
        try:
            client.create("wal-lfn", "wal-pfn")
            payload = client.flight()
        finally:
            client.close()
        flushes = [e for e in payload["events"] if e["kind"] == "wal.flush"]
        assert flushes
        assert flushes[-1]["data"]["buffered"] >= 1

    def test_induced_error_dumps_with_failing_span_id(
        self, make_server, traced
    ):
        """Acceptance criterion: an unhandled server error produces a dump
        retrievable via ``admin_flight`` whose error event carries the
        failing request's span id."""
        server = make_server(ServerRole.BOTH)
        client = connect(server.config.name)
        try:
            client.create("ok-lfn", "ok-pfn")
            with pytest.raises(MappingNotFoundError):
                client.get_mappings("missing-lfn")
            payload = client.flight()
        finally:
            client.close()

        errors = [e for e in payload["events"] if e["error"]]
        assert errors, "failed RPC left no flight error event"
        error = errors[-1]
        assert error["kind"] == "error"
        assert "lrc_get_mappings" in error["detail"]
        assert "MappingNotFoundError" in error["detail"]

        dump = payload["last_dump"]
        assert dump is not None
        assert "lrc_get_mappings" in dump["reason"]
        # The frozen window includes the healthy traffic before the error.
        dumped = {(e["kind"], e["detail"]) for e in dump["events"]}
        assert ("rpc.in", "lrc_create_mapping") in dumped

        # Span correlation: the error event's span is the failing
        # rpc.handle span the tracer retained.
        failing = [
            s
            for s in traced.interesting()
            if s.name == "rpc.handle" and s.error == "MappingNotFoundError"
        ]
        assert failing
        assert error["span_id"] == failing[-1].span_id
        assert error["trace_id"] == failing[-1].trace_id

    def test_disabled_with_zero_capacity(self, make_server):
        server = make_server(ServerRole.BOTH, flight_capacity=0)
        client = connect(server.config.name)
        try:
            client.create("nf-lfn", "nf-pfn")
            payload = client.flight()
        finally:
            client.close()
        assert payload == {
            "enabled": False, "stats": {}, "events": [], "last_dump": None
        }
        code, out = run_cli("flight", server.config.name)
        assert code == 1
        assert "flight_capacity" in out

    def test_limit_keeps_newest_events(self, make_server):
        server = make_server(ServerRole.BOTH)
        client = connect(server.config.name)
        try:
            for i in range(10):
                client.ping()
            payload = client.flight(limit=4)
        finally:
            client.close()
        assert len(payload["events"]) == 4
        seqs = [e["seq"] for e in payload["events"]]
        assert seqs == sorted(seqs)


def make_flight_manager(fail_pattern=None):
    engine = MySQLEngine(flush_on_commit=False, sync_latency=0.0)
    lrc = LocalReplicaCatalog(Connection(engine, "flmgr"), name="flmgr")
    lrc.init_schema()
    lrc.add_rli("rli1")
    sink = (
        FlakySink(NullSink(), FailureSchedule.pattern(fail_pattern))
        if fail_pattern
        else NullSink()
    )
    flight = FlightRecorder(capacity=64)
    clock_state = {"now": 0.0}
    manager = UpdateManager(
        lrc,
        lambda name: sink,
        policy=UpdatePolicy(
            retry=RetryPolicy(backoff_base=2.0, backoff_multiplier=2.0)
        ),
        clock=lambda: clock_state["now"],
        rng=lambda: 0.5,
        flight=flight,
    )
    return lrc, manager, flight, clock_state


class TestUpdateFlightEvents:
    def test_successful_push_records_attempt(self):
        lrc, manager, flight, _ = make_flight_manager()
        lrc.create_mapping("a", "p")
        manager.send_incremental_update()
        attempts = [e for e in flight.events() if e.kind == "update.attempt"]
        assert attempts
        assert attempts[0].detail == "incremental->rli1"
        assert attempts[0].data == {"target": "rli1", "added": 1, "removed": 0}

    def test_failed_push_records_error(self):
        lrc, manager, flight, _ = make_flight_manager(fail_pattern="F.")
        lrc.create_mapping("a", "p")
        manager.send_incremental_update()
        errors = flight.errors()
        assert errors
        assert errors[0].detail == "update incremental->rli1: FaultInjected"
        assert errors[0].data["target"] == "rli1"

    def test_redelivery_records_retry(self):
        lrc, manager, flight, clock_state = make_flight_manager(
            fail_pattern="F."
        )
        lrc.create_mapping("a", "p")
        manager.send_incremental_update()  # fails, target backs off
        clock_state["now"] += 200.0
        assert manager.retry_failed_deliveries() == ["retry:rli1"]
        retries = [e for e in flight.events() if e.kind == "update.retry"]
        assert retries
        assert retries[0].detail == "rli1"
        assert retries[0].data["consecutive_failures"] >= 1

    def test_full_update_attempt_detail(self):
        lrc, manager, flight, _ = make_flight_manager()
        lrc.create_mapping("a", "p")
        manager.send_full_update()
        attempts = [e for e in flight.events() if e.kind == "update.attempt"]
        assert attempts[0].detail == "full->rli1"


class TestGatewayRoutes:
    @pytest.fixture
    def gateway(self, make_server):
        server = make_server(ServerRole.BOTH, profile_hz=100.0).start()
        gw = HTTPGateway(server.config.name)
        yield gw, server
        gw.close()

    def test_profile_route(self, gateway):
        gw, _ = gateway
        status, body = http_get(f"{gw.url}/admin/profile")
        assert status == 200
        assert body["enabled"] is True
        assert body["hz"] == 100.0
        assert "profile" in body and "roles" in body

    def test_threads_route(self, gateway):
        gw, _ = gateway
        status, body = http_get(f"{gw.url}/admin/threads")
        assert status == 200
        assert body["enabled"] is True
        assert body["threads"]

    def test_flight_route_with_limit(self, gateway):
        gw, _ = gateway
        for i in range(6):
            http_get(f"{gw.url}/admin/stats")
        status, body = http_get(f"{gw.url}/admin/flight?limit=3")
        assert status == 200
        assert body["enabled"] is True
        assert len(body["events"]) == 3
        assert all(e["kind"] in ("rpc.in", "rpc.out") for e in body["events"])


class TestCLIOverTCP:
    """Acceptance criterion: ``rls profile`` against a live TCP server
    shows ``rpc.handle`` frames in the folded output."""

    @pytest.fixture
    def tcp_server(self):
        # A small sync latency keeps each request inside the handler long
        # enough for the 200 Hz sampler to catch workers mid-dispatch.
        server = RLSServer(
            ServerConfig(
                name="pf-tcp-server",
                role=ServerRole.BOTH,
                tcp=True,
                sync_latency=0.002,
                flush_on_commit=True,
                profile_hz=200.0,
            )
        ).start()
        yield server
        server.stop()

    @pytest.fixture
    def tcp_load(self, tcp_server):
        stop = threading.Event()
        host, port = tcp_server.tcp_address

        def loop(tag):
            client = connect_tcp_server(host, port)
            i = 0
            try:
                while not stop.is_set():
                    client.create(f"tcp-load-{tag}-{i}", f"pfn-{i}")
                    i += 1
            finally:
                client.close()

        threads = [
            threading.Thread(target=loop, args=(t,), daemon=True)
            for t in range(2)
        ]
        for t in threads:
            t.start()
        yield stop
        stop.set()
        for t in threads:
            t.join(timeout=10)

    def wait_for_handle_samples(self, server, timeout=15.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            stacks = server.profiler.profile().stacks
            if any("rpc:handle" in folded for folded in stacks):
                return
            time.sleep(0.02)
        pytest.fail("sampler never caught a worker inside rpc.handle")

    def test_rls_profile_folded_shows_rpc_handle(self, tcp_server, tcp_load):
        self.wait_for_handle_samples(tcp_server)
        host, port = tcp_server.tcp_address
        code, out = run_cli("profile", f"{host}:{port}", "--folded")
        assert code == 0
        handle_lines = [l for l in out.splitlines() if "rpc:handle" in l]
        assert handle_lines, out
        # Folded lines are "stack count" with the worker role as prefix.
        stack, count = handle_lines[0].rsplit(" ", 1)
        assert int(count) >= 1
        assert stack.startswith("rpc.worker;")

    def test_rls_profile_summary_and_roles(self, tcp_server, tcp_load):
        self.wait_for_handle_samples(tcp_server)
        host, port = tcp_server.tcp_address
        code, out = run_cli("profile", f"{host}:{port}")
        assert code == 0
        assert out.startswith("profiler: 200 Hz")
        assert "samples by role:" in out
        assert "rpc.worker=" in out
        assert "hottest stacks:" in out

    def test_rls_profile_window_mode(self, tcp_server, tcp_load):
        self.wait_for_handle_samples(tcp_server)
        host, port = tcp_server.tcp_address
        code, out = run_cli(
            "profile", f"{host}:{port}", "--seconds", "0.3", "--json"
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["window_seconds"] == 0.3
        # Load ran through the window, so the delta is non-empty and
        # consistent with its own stacks.
        assert payload["samples"] > 0
        assert sum(payload["profile"]["stacks"].values()) == payload["samples"]

    def test_rls_threads_shows_worker_roles(self, tcp_server, tcp_load):
        self.wait_for_handle_samples(tcp_server)
        host, port = tcp_server.tcp_address
        code, out = run_cli("threads", f"{host}:{port}")
        assert code == 0
        assert "rpc.worker" in out
        # Under live load a worker can legitimately be pinned on one frame
        # for a few samples, so accept either verdict — only require the
        # detection section to render.
        assert "no stuck threads detected" in out or "DETECTION [" in out

    def test_rls_flight_shows_rpc_events(self, tcp_server, tcp_load):
        host, port = tcp_server.tcp_address
        deadline = time.time() + 10.0
        while time.time() < deadline and not tcp_server.flight.events():
            time.sleep(0.02)
        code, out = run_cli("flight", f"{host}:{port}", "--limit", "10")
        assert code == 0
        assert out.startswith("flight recorder:")
        assert "rpc.in" in out
