"""End-to-end shard + mirror smoke: a 2-shard, 2-mirror cluster serving a
combined client through the full server stack, with a mid-flight mirror
kill and failover to the shard master.  Run directly by CI."""

from __future__ import annotations

import random

import pytest

from repro.cluster import CombinedClient, ShardMap
from repro.core.client import connect
from repro.core.config import ServerConfig, ServerRole
from repro.core.errors import ReadOnlyCatalogError
from repro.core.server import RLSServer

ENTRIES = 120


@pytest.fixture
def cluster():
    smap = ShardMap(
        shards=("e2e-s0", "e2e-s1"),
        mirrors={"e2e-s0": ("e2e-s0-m0",), "e2e-s1": ("e2e-s1-m0",)},
    )
    servers = {}
    for shard in smap.shards:
        for mirror in smap.mirrors_of(shard):
            servers[mirror] = RLSServer(
                ServerConfig(
                    name=mirror,
                    role=ServerRole.LRC,
                    mirror_of=shard,
                    cluster=smap,
                    sync_latency=0.0,
                )
            ).start()
        servers[shard] = RLSServer(
            ServerConfig(
                name=shard,
                role=ServerRole.LRC,
                mirrors=smap.mirrors_of(shard),
                cluster=smap,
                sync_latency=0.0,
            )
        ).start()
    yield smap, servers
    for server in servers.values():
        server.stop()


class TestShardMirrorEndToEnd:
    def test_full_lifecycle_with_mirror_failover(self, cluster):
        smap, servers = cluster
        pairs = [(f"e2e-lfn{i:04d}", f"pfn://e2e/{i}") for i in range(ENTRIES)]

        with CombinedClient(smap, rng=random.Random(42)) as cc:
            # 1. Writes spread over both shard masters.
            assert cc.bulk_create(pairs) == []
            per_shard = [servers[s].lrc.lfn_count() for s in smap.shards]
            assert sum(per_shard) == ENTRIES
            assert all(count > 0 for count in per_shard), per_shard

            # 2. Mirrors converge after an explicit sync.
            for shard in smap.shards:
                with connect(shard) as direct:
                    direct.mirror_sync()
            for shard in smap.shards:
                mirror = smap.mirrors_of(shard)[0]
                assert (
                    servers[mirror].lrc.lfn_count()
                    == servers[shard].lrc.lfn_count()
                )

            # 3. Reads are served (mirror-first) and answers are correct.
            for lfn, pfn in pairs[:40]:
                assert cc.get_mappings(lfn) == [pfn]
            mirror_served = sum(
                servers[m].rpc.requests_served
                for s in smap.shards
                for m in smap.mirrors_of(s)
            )
            assert mirror_served > 0

            # 4. Direct writes to a mirror are rejected with a typed error.
            with connect(smap.mirrors_of(smap.shards[0])[0]) as direct:
                with pytest.raises(ReadOnlyCatalogError):
                    direct.create("illegal", "pfn://illegal")

            # 5. Kill every mirror mid-read: reads fail over to the shard
            #    masters with zero failed operations.
            for shard in smap.shards:
                for mirror in smap.mirrors_of(shard):
                    servers[mirror].stop()
            for lfn, pfn in pairs:
                assert cc.get_mappings(lfn) == [pfn]
            health = cc.health()
            for shard in smap.shards:
                assert health[shard]["healthy"]
                assert not health[smap.mirrors_of(shard)[0]]["healthy"]

            # 6. Scatter-gather still spans the whole namespace.
            assert cc.lfn_count() == ENTRIES
            assert sorted(cc.query_wildcard("e2e-lfn*")) == sorted(pairs)

    def test_shard_map_served_over_admin_rpc(self, cluster):
        smap, servers = cluster
        with connect(smap.shards[0]) as direct:
            served = direct.shard_map()
        assert served["self"] == smap.shards[0]
        assert ShardMap.from_dict(served["shard_map"]) == smap
