"""Wire codec tests, including hypothesis round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.codec import decode, encode
from repro.net.errors import ProtocolError


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**62, -(2**62), 3.25, "", "héllo", b"", b"\x00\xff"],
    )
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_bigint_beyond_64_bits(self):
        value = 2**100 + 7
        assert decode(encode(value)) == value

    def test_negative_bigint(self):
        value = -(2**99)
        assert decode(encode(value)) == value

    def test_float_nan_roundtrip(self):
        import math

        assert math.isnan(decode(encode(float("nan"))))

    def test_bool_stays_bool(self):
        assert decode(encode(True)) is True
        assert decode(encode(1)) == 1 and decode(encode(1)) is not True


class TestContainers:
    def test_list(self):
        assert decode(encode([1, "a", None])) == [1, "a", None]

    def test_tuple_becomes_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_nested(self):
        value = {"a": [1, {"b": b"xy"}], "c": "s"}
        assert decode(encode(value)) == value

    def test_empty_containers(self):
        assert decode(encode([])) == []
        assert decode(encode({})) == {}

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(TypeError):
            encode({1: "a"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            encode(object())


class TestMalformedInput:
    def test_trailing_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            decode(encode(1) + b"extra")

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError):
            decode(encode("hello")[:-2])

    def test_unknown_tag_rejected(self):
        with pytest.raises(ProtocolError):
            decode(b"Z")


json_like = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=20,
)


@settings(max_examples=150)
@given(json_like)
def test_roundtrip_property(value):
    """Property: decode(encode(x)) == x for all wire-encodable values."""
    def normalize(v):
        if isinstance(v, tuple):
            return [normalize(i) for i in v]
        if isinstance(v, list):
            return [normalize(i) for i in v]
        if isinstance(v, dict):
            return {k: normalize(i) for k, i in v.items()}
        return v

    assert decode(encode(value)) == normalize(value)
