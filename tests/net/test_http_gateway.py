"""HTTP/JSON gateway tests (urllib against a live gateway)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import ServerRole
from repro.net.http_gateway import HTTPGateway


@pytest.fixture
def gateway(make_server):
    server = make_server(ServerRole.BOTH)
    gw = HTTPGateway(server.config.name)
    yield gw, server
    gw.close()


def http(method: str, url: str, payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestMappings:
    def test_create_and_get(self, gateway):
        gw, _ = gateway
        status, body = http(
            "POST", f"{gw.url}/mappings", {"lfn": "web-lfn", "pfn": "web-pfn"}
        )
        assert status == 201
        status, body = http("GET", f"{gw.url}/mappings/web-lfn")
        assert status == 200 and body["pfns"] == ["web-pfn"]

    def test_add_mode(self, gateway):
        gw, _ = gateway
        http("POST", f"{gw.url}/mappings", {"lfn": "l", "pfn": "p1"})
        status, _ = http(
            "POST", f"{gw.url}/mappings", {"lfn": "l", "pfn": "p2", "mode": "add"}
        )
        assert status == 201
        _, body = http("GET", f"{gw.url}/mappings/l")
        assert sorted(body["pfns"]) == ["p1", "p2"]

    def test_reverse_query(self, gateway):
        gw, _ = gateway
        http("POST", f"{gw.url}/mappings", {"lfn": "a", "pfn": "shared"})
        http("POST", f"{gw.url}/mappings", {"lfn": "b", "pfn": "shared"})
        status, body = http("GET", f"{gw.url}/lfns/shared")
        assert status == 200 and sorted(body["lfns"]) == ["a", "b"]

    def test_delete(self, gateway):
        gw, _ = gateway
        http("POST", f"{gw.url}/mappings", {"lfn": "gone", "pfn": "p"})
        status, _ = http(
            "DELETE", f"{gw.url}/mappings", {"lfn": "gone", "pfn": "p"}
        )
        assert status == 200
        status, _ = http("GET", f"{gw.url}/mappings/gone")
        assert status == 404

    def test_missing_is_404(self, gateway):
        gw, _ = gateway
        status, body = http("GET", f"{gw.url}/mappings/never")
        assert status == 404 and "error" in body

    def test_duplicate_is_409(self, gateway):
        gw, _ = gateway
        http("POST", f"{gw.url}/mappings", {"lfn": "dup", "pfn": "p"})
        status, _ = http("POST", f"{gw.url}/mappings", {"lfn": "dup", "pfn": "q"})
        assert status == 409

    def test_bad_name_is_400(self, gateway):
        gw, _ = gateway
        status, _ = http("POST", f"{gw.url}/mappings", {"lfn": "", "pfn": "p"})
        assert status == 400

    def test_missing_field_is_400(self, gateway):
        gw, _ = gateway
        status, _ = http("POST", f"{gw.url}/mappings", {"lfn": "only"})
        assert status == 400

    def test_url_encoded_names(self, gateway):
        gw, _ = gateway
        lfn = "lfn://exp/file 1"
        http("POST", f"{gw.url}/mappings", {"lfn": lfn, "pfn": "p"})
        from urllib.parse import quote

        status, body = http("GET", f"{gw.url}/mappings/{quote(lfn, safe='')}")
        assert status == 200 and body["pfns"] == ["p"]


class TestIndexAndBulk:
    def test_rli_query_via_http(self, gateway):
        gw, server = gateway
        http("POST", f"{gw.url}/mappings", {"lfn": "idx-lfn", "pfn": "p"})
        server.lrc.add_rli(server.config.name)
        status, body = http("POST", f"{gw.url}/admin/update")
        assert status == 200 and body["duration"] >= 0
        status, body = http("GET", f"{gw.url}/index/idx-lfn")
        assert status == 200 and body["lrcs"] == [server.config.name]

    def test_bulk_query(self, gateway):
        gw, _ = gateway
        for i in range(3):
            http("POST", f"{gw.url}/mappings", {"lfn": f"bq{i}", "pfn": f"p{i}"})
        status, body = http(
            "POST", f"{gw.url}/bulk/query", {"lfns": ["bq0", "bq2", "nah"]}
        )
        assert status == 200
        assert body == {"bq0": ["p0"], "bq2": ["p2"]}

    def test_stats(self, gateway):
        gw, _ = gateway
        status, body = http("GET", f"{gw.url}/admin/stats")
        assert status == 200 and body["roles"] == {"lrc": True, "rli": True}

    def test_unknown_route_404(self, gateway):
        gw, _ = gateway
        status, _ = http("GET", f"{gw.url}/nope")
        assert status == 404
        status, _ = http("POST", f"{gw.url}/nope")
        assert status == 404


class TestAdminRoutes:
    def test_usage_shape_after_traffic(self, gateway):
        gw, _ = gateway
        http("POST", f"{gw.url}/mappings", {"lfn": "/cms/data/f1", "pfn": "p"})
        http("GET", f"{gw.url}/mappings//cms/data/f1")
        status, body = http("GET", f"{gw.url}/admin/usage")
        assert status == 200
        assert body["enabled"] is True
        assert set(body["fields"]) >= {"requests", "wall_time", "wal_bytes"}
        # The gateway's own client connections carry no credential and
        # declare no principal, so everything accounts as anonymous.
        totals = body["principals"]["anonymous"]
        assert sum(c["requests"] for c in totals.values()) >= 2
        assert body["top_principals"][0]["principal"] == "anonymous"
        assert {"capacity", "offered"} <= set(body["sketch"])
        assert body["principals_tracked"] >= 1

    def test_usage_disabled_degrades(self, make_server):
        from repro.net.http_gateway import HTTPGateway

        server = make_server(ServerRole.BOTH, usage_accounting=False)
        with HTTPGateway(server.config.name) as gw:
            status, body = http("GET", f"{gw.url}/admin/usage")
        assert status == 200
        assert body["enabled"] is False and body["top_principals"] == []

    def test_slo_shape(self, gateway):
        gw, _ = gateway
        status, body = http("GET", f"{gw.url}/admin/slo")
        assert status == 200
        assert body["enabled"] is True
        assert set(body["classes"]) == {"add", "query", "bulk", "wildcard"}
        assert isinstance(body["alerts"], list)

    def test_queries_shape_and_limit(self, gateway):
        gw, server = gateway
        # Everything retains with a zero threshold: drive one statement.
        server.engine.profiler.log.slow_threshold = 0.0
        http("POST", f"{gw.url}/mappings", {"lfn": "slow", "pfn": "p"})
        status, body = http("GET", f"{gw.url}/admin/queries?limit=1")
        assert status == 200
        assert body["enabled"] is True
        assert len(body["queries"]) == 1
        assert {"sql", "statement_class", "duration"} <= set(
            body["queries"][0]
        )
        assert body["stats"]["retained"] >= 1

    def test_shard_map_outside_a_cluster(self, gateway):
        gw, server = gateway
        status, body = http("GET", f"{gw.url}/admin/shard_map")
        assert status == 200
        assert body["self"] == server.config.name
        assert body["shard_map"] is None

    def test_unknown_trace_is_404_when_tracing(self, gateway):
        from repro.obs.tracing import SpanSink, Tracer, install_tracer

        gw, _ = gateway
        install_tracer(Tracer(sink=SpanSink()))
        try:
            status, body = http("GET", f"{gw.url}/admin/trace/deadbeef")
        finally:
            install_tracer(None)
        assert status == 404
        assert body["spans"] == []

    def test_unknown_trace_without_tracer_degrades(self, gateway):
        gw, _ = gateway
        status, body = http("GET", f"{gw.url}/admin/trace/deadbeef")
        assert status == 200
        assert body["enabled"] is False

    def test_unknown_admin_route_404(self, gateway):
        gw, _ = gateway
        status, body = http("GET", f"{gw.url}/admin/nope")
        assert status == 404 and "error" in body


class TestTraces:
    def test_disabled_without_tracer(self, gateway):
        gw, _ = gateway
        status, body = http("GET", f"{gw.url}/admin/traces")
        assert status == 200
        assert body["enabled"] is False and body["spans"] == []

    def test_tail_retained_spans_with_limit(self, gateway):
        from repro.obs.tracing import SpanSink, Tracer, install_tracer

        gw, _ = gateway
        install_tracer(Tracer(sink=SpanSink(latency_threshold=0.0)))
        try:
            for i in range(5):
                http("POST", f"{gw.url}/mappings", {"lfn": f"tr{i}", "pfn": "p"})
            status, body = http("GET", f"{gw.url}/admin/traces?limit=3")
        finally:
            install_tracer(None)
        assert status == 200
        assert body["enabled"] is True
        assert 0 < len(body["spans"]) <= 3
        assert body["stats"]["retained"] >= 5
        assert {"name", "trace_id", "duration"} <= set(body["spans"][0])
