"""Wire-format hardening: fused-codec parity and malformed-frame fuzzing.

The batch encode/decode fast paths in :mod:`repro.net.messages` write and
walk scaffold bytes directly; these tests pin them to the generic codec
byte-for-byte and message-for-message, then fuzz mutated frames to prove
every malformation surfaces as :class:`ProtocolError` — never an
``IndexError``/``TypeError``/``struct.error`` that would kill a server
handler thread.
"""

import random
import socket

import pytest

from repro.net.codec import decode, encode
from repro.net.errors import ProtocolError
from repro.net.messages import (
    Batch,
    Hello,
    Request,
    Response,
    encode_message_into,
    message_from_bytes,
)

# Representative envelope shapes: every form the v1/v2 protocol can emit,
# plus payload variety (nested lists, dicts, bytes, unicode, bigints).
MESSAGES = [
    Request("lrc_add", ("lfn", "pfn")),
    Request("m", (), trace=("t" * 16, "s" * 8)),
    Request("bulk", ([["a", 1], ["b", 2]], {"k": [1, 2.5, None]}), id=7),
    Request("väx", (b"\x00\xff" * 9, 2**70), trace=None, id=1),
    Response.success([1, 2, 3]),
    Response.success({"rows": [["x", "y"]]}, id=99),
    Response.failure(ValueError("bad value"), id=3),
    Response.failure(KeyError("missing")),
    Response(True, None, "", "", 12),
    Hello(version=2, credential=b"cert", attributes={"site": "cern"}),
    Batch(
        (
            Request("echo", (1,), id=1),
            Request("echo", ("two",), trace=("tr", "sp"), id=2),
            Request("no_id", ("classic",)),
            Response.success("pipelined", id=1),
            Response(True, [b"blob"], "", "", 2),
            Response.failure(RuntimeError("boom"), id=3),
            Response(False, None, "E", "m"),
        )
    ),
    Batch(()),
    Batch(tuple(Request("m", (i,), id=i + 1) for i in range(64))),
]


def wire(message) -> bytes:
    out = bytearray()
    encode_message_into(out, message)
    return bytes(out)


class TestFusedCodecParity:
    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
    def test_fused_encoding_matches_generic(self, message):
        assert wire(message) == encode(message.envelope())

    @pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).__name__)
    def test_roundtrip(self, message):
        assert message_from_bytes(wire(message)) == message

    def test_fused_parse_matches_generic_parse(self):
        # Force the generic path by re-encoding the envelope through a
        # non-canonical outer list (extra work, same value): both decoders
        # must produce identical messages for the same canonical frame.
        for message in MESSAGES:
            if not isinstance(message, Batch):
                continue
            frame = wire(message)
            fused = message_from_bytes(frame)
            from repro.net.messages import _batch_from_envelope

            generic = _batch_from_envelope(decode(frame))
            assert fused == generic

    def test_memoryview_input(self):
        for message in MESSAGES:
            assert message_from_bytes(memoryview(wire(message))) == message


class TestCompactResponseForm:
    def test_compact_form_used_for_id_bearing_success(self):
        envelope = Response.success("v", id=5).envelope()
        assert envelope == [1, True, "v", 5]

    def test_failure_never_compact(self):
        envelope = Response.failure(ValueError("x"), id=5).envelope()
        assert len(envelope) == 6

    def test_idless_success_stays_v1_shape(self):
        assert len(Response.success("v").envelope()) == 5

    def test_compact_requires_true(self):
        with pytest.raises(ProtocolError):
            message_from_bytes(encode([1, False, "v", 5]))

    def test_compact_requires_id(self):
        with pytest.raises(ProtocolError):
            message_from_bytes(encode([1, True, "v", None]))

    def test_compact_rejects_non_int_id(self):
        with pytest.raises(ProtocolError):
            message_from_bytes(encode([1, True, "v", "id"]))

    def test_compact_inside_batch(self):
        frame = encode([3, [[1, True, "v", 5]]])
        batch = message_from_bytes(frame)
        assert batch == Batch((Response(True, "v", "", "", 5),))
        with pytest.raises(ProtocolError):
            message_from_bytes(encode([3, [[1, True, "v", None]]]))


class TestDefensiveValidation:
    @pytest.mark.parametrize(
        "envelope",
        [
            [],  # empty
            [9, "x"],  # unknown kind
            "not a list",
            [0],  # request too short
            [0, "m", "args-not-list"],
            [0, 42, []],  # non-str method
            [0, "m", [], "trace-not-list", 1],
            [0, "m", [], ["only-one"], 1],
            [0, "m", [], [1, 2], 1],  # non-str trace parts
            [0, "m", [], [], "id"],  # non-int id
            [1, True],  # response too short
            [1, "yes", None, "", ""],  # non-bool ok
            [1, True, None, 7, ""],  # non-str error_type
            [1, True, None, "", "", "id"],  # non-int id
            [1, True, None, "", "", 1, 2],  # too long
            [2, "v", None, {}],  # non-int hello version
            [2, 1, "cred", {}],  # non-bytes credential
            [2, 1, None, []],  # non-dict attributes
            [2, 1, None, {}, 5],  # hello too long
            [3, "items"],  # batch items not a list
            [3, [["x"]]],  # batch item bad kind
            [3, [[2, 1, None, {}]]],  # hello inside batch
            [3, [[3, []]]],  # nested batch
            [3, [42]],  # batch item not a list
        ],
    )
    def test_bad_envelope_is_protocol_error(self, envelope):
        with pytest.raises(ProtocolError):
            message_from_bytes(encode(envelope))


def _mutations(frame: bytes, rng: random.Random, count: int):
    """Deterministic corpus of corrupted variants of ``frame``."""
    for _ in range(count):
        mode = rng.randrange(4)
        data = bytearray(frame)
        if mode == 0 and data:  # flip a byte
            i = rng.randrange(len(data))
            data[i] ^= 1 << rng.randrange(8)
        elif mode == 1:  # truncate
            data = data[: rng.randrange(len(data) + 1)]
        elif mode == 2:  # append junk
            data += bytes(rng.randrange(256) for _ in range(rng.randrange(1, 5)))
        else:  # splice a random chunk over the middle
            if len(data) >= 4:
                i = rng.randrange(len(data) - 2)
                data[i : i + 2] = bytes(
                    rng.randrange(256) for _ in range(rng.randrange(4))
                )
        yield bytes(data)


class TestMutationFuzz:
    def test_decoder_never_leaks_low_level_errors(self):
        rng = random.Random(0xC0DEC)
        for message in MESSAGES:
            frame = wire(message)
            for mutant in _mutations(frame, rng, 400):
                try:
                    decoded = message_from_bytes(mutant)
                except ProtocolError:
                    continue
                # A mutant that still decodes must yield a real message
                # object (e.g. a flipped payload byte), never garbage.
                assert isinstance(decoded, (Request, Response, Hello, Batch))

    def test_codec_decode_is_hardened_too(self):
        rng = random.Random(0xBEEF)
        frame = encode(
            ["deep", [1, [2, [3.5, {"k": b"v"}]]], 2**80, None, True]
        )
        for mutant in _mutations(frame, rng, 1500):
            try:
                decode(mutant)
            except ProtocolError:
                continue


class TestFuzzOverTCP:
    def test_handler_threads_survive_malformed_frames(self):
        from repro.net.rpc import RPCClient, RPCServer
        from repro.net.transport import (
            TCPServerTransport,
            _recv_frame,
            _send_frame,
            connect_tcp,
        )

        server = RPCServer()
        server.register("ping", lambda ctx, args: "pong")
        transport = TCPServerTransport(server, "127.0.0.1", 0)
        rng = random.Random(0xF22)
        hello = Hello(version=2).to_bytes()
        base = Request("ping", (), id=1).to_bytes()
        try:
            for mutant in _mutations(base, rng, 40):
                with socket.create_connection(
                    (transport.host, transport.port), timeout=5
                ) as sock:
                    _send_frame(sock, hello)
                    _recv_frame(sock)  # welcome
                    _send_frame(sock, mutant)
                    try:
                        reply = message_from_bytes(_recv_frame(sock))
                    except Exception:
                        # Mutants that still parse as requests are simply
                        # answered; connection-fatal mutants close after
                        # the typed error below — either way the server
                        # must not wedge.
                        continue
                    assert isinstance(reply, Response)
                    if not reply.ok:
                        assert reply.error_type in (
                            "ProtocolError",
                            "NoSuchMethodError",
                        )
            # Every handler thread survived: a fresh client still works.
            with RPCClient(
                connect_tcp(transport.host, transport.port)
            ) as client:
                assert client.call("ping") == "pong"
            assert server.inflight == 0
        finally:
            transport.close()
