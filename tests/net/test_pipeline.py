"""Pipelined RPC tests: correlation ids, batching, interop, races.

Covers the v2 hot path end to end over real sockets — many requests in
flight on one connection, whole bursts as single Batch frames — plus the
compatibility matrix (old client ↔ new server, new client ↔ old server)
and the client-side races the rewrite fixed (channel swap during retry,
lifetime retry accounting).
"""

import socket
import threading

import pytest

from repro.net.errors import (
    ProtocolError,
    RemoteError,
    TransportClosedError,
)
from repro.net.messages import (
    PROTOCOL_VERSION,
    Batch,
    Hello,
    Request,
    Response,
    message_from_bytes,
)
from repro.net.retry import RetryPolicy
from repro.net.rpc import RPCClient, RPCServer, UNKNOWN_METHOD_LABEL
from repro.net.transport import (
    TCPServerTransport,
    _recv_frame,
    _send_frame,
    connect_tcp,
)
from repro.obs.metrics import MetricsRegistry


def make_server(metrics=None):
    server = RPCServer(metrics=metrics)
    server.register("echo", lambda ctx, args: args[0])
    server.register("add", lambda ctx, args: args[0] + args[1])
    server.register("boom", lambda ctx, args: 1 / 0)
    return server


@pytest.fixture
def tcp_server():
    registry = MetricsRegistry()
    server = make_server(metrics=registry)
    transport = TCPServerTransport(server, "127.0.0.1", 0)
    yield server, transport, registry
    transport.close()


class TestNegotiation:
    def test_new_client_new_server_speaks_v2(self, tcp_server):
        _, transport, _ = tcp_server
        channel = connect_tcp(transport.host, transport.port)
        try:
            assert channel.proto == PROTOCOL_VERSION == 2
            assert channel.pipelined
        finally:
            channel.close()

    def test_client_caps_at_own_version(self, tcp_server):
        # A server advertising a *higher* version than we speak must be
        # negotiated down to ours, never up.
        _, transport, _ = tcp_server
        channel = connect_tcp(transport.host, transport.port)
        try:
            assert channel.proto <= PROTOCOL_VERSION
        finally:
            channel.close()


class TestPipelining:
    def test_async_burst_roundtrip(self, tcp_server):
        _, transport, _ = tcp_server
        with RPCClient(connect_tcp(transport.host, transport.port)) as client:
            assert client.pipelined
            calls = [client.call_async("echo", i) for i in range(50)]
            client.drain()
            assert all(c.done for c in calls)
            assert [c.result() for c in calls] == list(range(50))

    def test_burst_travels_as_one_batch_frame(self, tcp_server):
        _, transport, registry = tcp_server
        batches = registry.counter("net.batch_frames", transport="tcp")
        before = batches.value
        with RPCClient(connect_tcp(transport.host, transport.port)) as client:
            for i in range(16):
                client.call_async("echo", i)
            client.drain()
        assert batches.value == before + 1

    def test_result_drains_implicitly(self, tcp_server):
        _, transport, _ = tcp_server
        with RPCClient(connect_tcp(transport.host, transport.port)) as client:
            pending = client.call_async("add", 2, 3)
            assert pending.result() == 5

    def test_error_mid_burst_does_not_poison_neighbors(self, tcp_server):
        _, transport, _ = tcp_server
        with RPCClient(connect_tcp(transport.host, transport.port)) as client:
            before = client.call_async("echo", "a")
            bad = client.call_async("boom")
            after = client.call_async("echo", "z")
            client.drain()
            assert before.result() == "a"
            with pytest.raises(RemoteError) as err:
                bad.result()
            assert err.value.error_type == "ZeroDivisionError"
            assert after.result() == "z"

    def test_sync_calls_still_work_on_pipelined_channel(self, tcp_server):
        _, transport, _ = tcp_server
        with RPCClient(connect_tcp(transport.host, transport.port)) as client:
            assert client.call("add", 1, 2) == 3
            assert client.call("echo", "x") == "x"

    def test_concurrent_threads_share_one_connection(self, tcp_server):
        _, transport, _ = tcp_server
        with RPCClient(connect_tcp(transport.host, transport.port)) as client:
            results: dict[int, list] = {}
            errors: list = []

            def worker(tid: int) -> None:
                try:
                    calls = [
                        client.call_async("echo", (tid, i)) for i in range(40)
                    ]
                    client.drain()
                    results[tid] = [c.result() for c in calls]
                except Exception as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(t,)) for t in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            for tid in range(6):
                # The codec decodes tuples as lists.
                assert results[tid] == [[tid, i] for i in range(40)]

    def test_submit_after_close_fails_fast(self, tcp_server):
        _, transport, _ = tcp_server
        channel = connect_tcp(transport.host, transport.port)
        channel.close()
        pending = channel.submit(Request("echo", (1,)))
        assert pending.done
        with pytest.raises(TransportClosedError):
            pending.get()


class TestOldServerNewClient:
    """A v1-era server answers the Hello with a bare welcome string and
    speaks one-request-at-a-time; the new client must fall back."""

    @pytest.fixture
    def v1_server(self):
        server = make_server()
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        stop = threading.Event()

        def serve():
            while not stop.is_set():
                try:
                    conn, addr = listener.accept()
                except OSError:
                    return
                with conn:
                    try:
                        hello = message_from_bytes(_recv_frame(conn))
                        ctx = server.handshake(hello, peer=str(addr))
                        # Old wire shape: a plain string, no proto field.
                        _send_frame(
                            conn, Response.success("welcome").to_bytes()
                        )
                        while True:
                            message = message_from_bytes(_recv_frame(conn))
                            assert isinstance(message, Request)
                            reply = server.handle(ctx, message)
                            _send_frame(conn, reply.to_bytes())
                    except (TransportClosedError, OSError):
                        continue

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        yield port
        stop.set()
        listener.close()
        thread.join(timeout=5)

    def test_falls_back_to_v1(self, v1_server):
        channel = connect_tcp("127.0.0.1", v1_server)
        try:
            assert channel.proto == 1
            assert not channel.pipelined
        finally:
            channel.close()

    def test_calls_and_async_surface_work_serially(self, v1_server):
        with RPCClient(connect_tcp("127.0.0.1", v1_server)) as client:
            assert not client.pipelined
            assert client.call("add", 20, 22) == 42
            # The pipelined API degrades to synchronous completion.
            calls = [client.call_async("echo", i) for i in range(5)]
            client.drain()
            assert [c.result() for c in calls] == list(range(5))


class TestOldClientNewServer:
    """A v1-era client never sends ids or batches; the new server must
    answer with plain 5-field responses."""

    def _v1_call(self, sock, request: Request) -> Response:
        _send_frame(sock, request.to_bytes())
        message = message_from_bytes(_recv_frame(sock))
        assert isinstance(message, Response)
        return message

    def test_v1_session_against_new_server(self, tcp_server):
        _, transport, _ = tcp_server
        with socket.create_connection(
            (transport.host, transport.port), timeout=5
        ) as sock:
            _send_frame(sock, Hello(version=1).to_bytes())
            welcome = message_from_bytes(_recv_frame(sock))
            assert welcome.ok
            resp = self._v1_call(sock, Request("add", (3, 4)))
            assert resp.ok and resp.value == 7
            # No correlation id came back: the reply is a v1 envelope.
            assert resp.id is None
            wire = resp.to_bytes()
            from repro.net.codec import decode

            assert len(decode(wire)) == 5

    def test_v1_client_never_sees_batch_frames(self, tcp_server):
        _, transport, registry = tcp_server
        batches = registry.counter("net.batch_frames", transport="tcp")
        before = batches.value
        with socket.create_connection(
            (transport.host, transport.port), timeout=5
        ) as sock:
            _send_frame(sock, Hello(version=1).to_bytes())
            message_from_bytes(_recv_frame(sock))
            for i in range(10):
                assert self._v1_call(sock, Request("echo", (i,))).value == i
        assert batches.value == before


class TestProtocolErrorResponses:
    def test_malformed_frame_gets_typed_error_then_close(self, tcp_server):
        _, transport, registry = tcp_server
        with socket.create_connection(
            (transport.host, transport.port), timeout=5
        ) as sock:
            _send_frame(sock, Hello(version=1).to_bytes())
            message_from_bytes(_recv_frame(sock))
            _send_frame(sock, b"\xffgarbage")
            reply = message_from_bytes(_recv_frame(sock))
            assert isinstance(reply, Response) and not reply.ok
            assert reply.error_type == "ProtocolError"
            # The server closes the conversation after answering.
            assert sock.recv(1) == b""
        assert (
            registry.counter("net.protocol_errors", transport="tcp").value
            >= 1
        )

    def test_client_raises_typed_error_not_retryable(self, tcp_server):
        # The server's id-less ProtocolError response cannot be matched to
        # a pending request, so the reader surfaces it as a RemoteError
        # carrying the remote type — which the retry layer treats as
        # fatal, so a possibly-completed mutation is never blindly
        # re-sent over a conversation the server gave up on.
        from repro.net.retry import is_retryable

        _, transport, _ = tcp_server
        channel = connect_tcp(transport.host, transport.port)
        try:
            with pytest.raises(RemoteError) as err:
                # Batch items must be requests; a response inside the
                # batch is a protocol violation the server rejects.
                channel._io.send_message(
                    channel._sock,
                    Batch((Response.success(1, id=9),)),
                )
                message = message_from_bytes(
                    channel._io.recv_frame(channel._sock)
                )
                channel._dispatch(message)
            assert err.value.error_type == "ProtocolError"
            assert not is_retryable(err.value)
            assert not is_retryable(ProtocolError("local decode failure"))
        finally:
            channel.close()

    def test_server_survives_malformed_frames(self, tcp_server):
        _, transport, _ = tcp_server
        for _ in range(5):
            with socket.create_connection(
                (transport.host, transport.port), timeout=5
            ) as sock:
                _send_frame(sock, Hello(version=1).to_bytes())
                message_from_bytes(_recv_frame(sock))
                _send_frame(sock, b"\x00" * 7)
                message_from_bytes(_recv_frame(sock))
        # Fresh connections still serve.
        with RPCClient(connect_tcp(transport.host, transport.port)) as client:
            assert client.call("echo", "alive") == "alive"


class TestUnknownMethodLabel:
    def test_unknown_method_uses_bounded_label(self):
        registry = MetricsRegistry()
        server = make_server(metrics=registry)
        ctx = server.handshake(Hello(), "test")
        hostile = "method-" + "x" * 200
        resp = server.handle(ctx, Request(hostile, ()))
        assert not resp.ok and resp.error_type == "NoSuchMethodError"
        assert hostile in resp.error_message
        assert (
            registry.counter(
                "rpc.errors", method=UNKNOWN_METHOD_LABEL
            ).value
            == 1
        )
        # The hostile name must not have minted a metric label.
        assert all(
            hostile not in key
            for key in registry.snapshot().counters
            if key.startswith("rpc.errors")
        )

    def test_label_cardinality_stays_bounded(self):
        registry = MetricsRegistry()
        server = make_server(metrics=registry)
        ctx = server.handshake(Hello(), "test")
        for i in range(100):
            server.handle(ctx, Request(f"no-such-{i}", ()))
        error_series = [
            key
            for key in registry.snapshot().counters
            if key.startswith("rpc.errors")
        ]
        assert len(error_series) == 1
        assert (
            registry.counter(
                "rpc.errors", method=UNKNOWN_METHOD_LABEL
            ).value
            == 100
        )


class _FlakyChannel:
    """Channel whose first ``fail_first`` requests raise a retryable
    transport error; thereafter it answers."""

    pipelined = False

    def __init__(self, fail_first: int) -> None:
        self._lock = threading.Lock()
        self.failures_left = fail_first
        self.requests_seen = 0
        self.closed = False

    def request(self, request: Request) -> Response:
        with self._lock:
            self.requests_seen += 1
            if self.failures_left > 0:
                self.failures_left -= 1
                raise TransportClosedError("injected failure")
        return Response.success(list(request.args))

    def flush(self) -> None:
        pass

    def drain(self) -> None:
        pass

    def close(self) -> None:
        self.closed = True


class TestRetryAccounting:
    def test_reconnect_swaps_channel_under_lock(self):
        good = _FlakyChannel(fail_first=0)
        bad = _FlakyChannel(fail_first=10_000)
        client = RPCClient(
            bad,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0),
            reconnect=lambda: good,
            sleep=lambda _s: None,
        )
        assert client.call("echo", 1) == [1]
        assert client.channel is good
        assert bad.closed  # the dead channel was closed, not leaked
        assert client.retries == 1

    def test_concurrent_retries_account_exactly(self):
        # Two threads each hit one transport failure; lifetime retries
        # must equal the number of failed attempts, not lose increments
        # to a read-modify-write race.
        flaky = _FlakyChannel(fail_first=2)
        client = RPCClient(
            flaky,
            retry=RetryPolicy(max_attempts=5, backoff_base=0.0, jitter=0.0),
            sleep=lambda _s: None,
        )
        barrier = threading.Barrier(2)
        outcomes: list = []

        def worker() -> None:
            barrier.wait()
            outcomes.append(client.call("echo", "ok"))

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == [["ok"], ["ok"]]
        assert client.retries == 2

    def test_failed_reconnect_leaves_channel_for_next_attempt(self):
        flaky = _FlakyChannel(fail_first=1)
        attempts: list[int] = []

        def dial():
            attempts.append(1)
            raise OSError("dial failed")

        client = RPCClient(
            flaky,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0),
            reconnect=dial,
            sleep=lambda _s: None,
        )
        # Reconnect fails, but the original (now healthy) channel answers
        # on the next attempt instead of the client deadlocking or
        # dropping the call.
        assert client.call("echo", 7) == [7]
        assert attempts == [1]
        assert client.retries == 1
