"""Retry policy tests: backoff schedules, classification, client retries."""

import socket

import pytest

from repro.net.errors import (
    NetError,
    ProtocolError,
    RemoteError,
    TransportClosedError,
)
from repro.net.messages import Request
from repro.net.retry import (
    DEFAULT_RETRY,
    NO_RETRY,
    RetryPolicy,
    is_retryable,
    retry_call,
)
from repro.net.rpc import RPCClient, RPCServer
from repro.net.transport import LocalTransport, connect_tcp
from repro.testing import FailureSchedule, FaultInjected, FlakyChannel


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            ConnectionError("reset"),
            ConnectionRefusedError("refused"),
            TimeoutError("slow"),
            OSError("broken pipe"),
            TransportClosedError("closed"),
            FaultInjected("scripted"),
        ],
    )
    def test_transient_errors_retryable(self, exc):
        assert is_retryable(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            RemoteError("MappingExistsError", "exists"),
            ProtocolError("bad frame"),
            ValueError("not a net error"),
            KeyError("nope"),
        ],
    )
    def test_fatal_and_foreign_errors_not_retryable(self, exc):
        # RemoteError means the server answered: retrying could repeat a
        # completed mutation.  ProtocolError means garbage on the wire.
        assert not is_retryable(exc)


class TestBackoff:
    def test_exponential_schedule_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, backoff_base=0.5, backoff_multiplier=2.0,
            backoff_max=30.0, jitter=0.0,
        )
        assert policy.delays() == [0.5, 1.0, 2.0, 4.0]

    def test_backoff_capped_at_max(self):
        policy = RetryPolicy(
            backoff_base=1.0, backoff_multiplier=10.0, backoff_max=5.0,
            jitter=0.0,
        )
        assert policy.backoff(0) == 1.0
        assert policy.backoff(1) == 5.0
        assert policy.backoff(4) == 5.0

    def test_jitter_spreads_around_nominal(self):
        policy = RetryPolicy(backoff_base=1.0, jitter=0.1)
        assert policy.backoff(0, rng=lambda: 0.0) == pytest.approx(0.9)
        assert policy.backoff(0, rng=lambda: 0.5) == pytest.approx(1.0)
        assert policy.backoff(0, rng=lambda: 1.0) == pytest.approx(1.1)

    def test_no_retry_policy_has_empty_schedule(self):
        assert NO_RETRY.delays() == []


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        schedule = FailureSchedule.pattern("FF.")
        sleeps = []

        def flaky():
            schedule.check("op")
            return "ok"

        policy = RetryPolicy(max_attempts=3, backoff_base=0.5, jitter=0.0)
        assert retry_call(flaky, policy, sleep=sleeps.append) == "ok"
        assert sleeps == [0.5, 1.0]
        assert schedule.failures == 2

    def test_exhaustion_reraises_last_error_unwrapped(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        sleeps = []

        def dead():
            raise ConnectionRefusedError("still down")

        with pytest.raises(ConnectionRefusedError):
            retry_call(dead, policy, sleep=sleeps.append)
        assert len(sleeps) == 2  # backoffs between 3 attempts

    def test_fatal_error_propagates_immediately(self):
        calls = []

        def answered():
            calls.append(1)
            raise RemoteError("SomeError", "server said no")

        with pytest.raises(RemoteError):
            retry_call(answered, DEFAULT_RETRY, sleep=lambda s: None)
        assert len(calls) == 1

    def test_on_retry_hook_sees_each_failure(self):
        seen = []
        schedule = FailureSchedule.fail_first(2)

        def flaky():
            schedule.check("op")
            return 42

        retry_call(
            flaky,
            RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=lambda s: None,
            on_retry=lambda attempt, exc: seen.append((attempt, type(exc))),
        )
        assert seen == [(0, FaultInjected), (1, FaultInjected)]


def _echo_server():
    server = RPCServer()
    server.register("echo", lambda ctx, args: args[0])
    return server


class TestRPCClientRetry:
    def test_flaky_channel_retried_to_success(self):
        transport = LocalTransport(_echo_server(), name=None)
        schedule = FailureSchedule.pattern("F.")
        sleeps = []
        client = RPCClient(
            FlakyChannel(transport.open_channel(), schedule),
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=sleeps.append,
        )
        assert client.call("echo", "hello") == "hello"
        assert client.retries == 1
        assert sleeps == [0.5]

    def test_reply_lost_mode_also_retried(self):
        transport = LocalTransport(_echo_server(), name=None)
        schedule = FailureSchedule.pattern("F.")
        client = RPCClient(
            FlakyChannel(transport.open_channel(), schedule, fail_after=True),
            retry=RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=lambda s: None,
        )
        # The first request reached the server, its reply was lost, and
        # the retry delivered: the client must still get an answer.
        assert client.call("echo", "x") == "x"

    def test_reconnect_replaces_channel_between_attempts(self):
        transport = LocalTransport(_echo_server(), name=None)

        class DeadChannel:
            def request(self, request: Request):
                raise ConnectionResetError("peer vanished")

            def close(self):
                pass

        client = RPCClient(
            DeadChannel(),
            retry=RetryPolicy(max_attempts=2, jitter=0.0),
            reconnect=lambda: transport.open_channel(),
            sleep=lambda s: None,
        )
        assert client.call("echo", "back") == "back"
        assert not isinstance(client.channel, DeadChannel)

    def test_no_retry_without_policy(self):
        transport = LocalTransport(_echo_server(), name=None)
        schedule = FailureSchedule.fail_first(1)
        client = RPCClient(FlakyChannel(transport.open_channel(), schedule))
        with pytest.raises(FaultInjected):
            client.call("echo", "x")
        assert client.retries == 0

    def test_remote_error_never_retried(self):
        server = RPCServer()
        calls = []

        def boom(ctx, args):
            calls.append(1)
            raise ValueError("handler failed")

        server.register("boom", boom)
        transport = LocalTransport(server, name=None)
        client = RPCClient(
            transport.open_channel(), retry=RetryPolicy(max_attempts=5, jitter=0.0),
            sleep=lambda s: None,
        )
        with pytest.raises(NetError):
            client.call("boom")
        assert len(calls) == 1  # the handler ran once, not five times


class TestConnectTCPRetry:
    def test_refused_connect_retried_then_raises(self):
        # Grab a port that is definitely closed.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        sleeps = []
        policy = RetryPolicy(
            max_attempts=3, call_timeout=0.5, backoff_base=0.1, jitter=0.0
        )
        with pytest.raises(OSError):
            connect_tcp(
                "127.0.0.1", port, retry=policy, sleep=sleeps.append
            )
        assert sleeps == [0.1, 0.2]


class TestRetryTracePropagation:
    """Each retried attempt gets its own child span under the client span,
    and the retry count lands on the ``rpc.call`` span as a tag."""

    @pytest.fixture
    def tracer(self):
        from repro.obs import tracing
        from repro.obs.tracing import Tracer

        t = Tracer()
        tracing.install_tracer(t)
        yield t
        tracing.install_tracer(None)

    def flaky_client(self, pattern, max_attempts=3):
        transport = LocalTransport(_echo_server(), name=None)
        return RPCClient(
            FlakyChannel(transport.open_channel(), FailureSchedule.pattern(pattern)),
            retry=RetryPolicy(max_attempts=max_attempts, jitter=0.0),
            sleep=lambda s: None,
        )

    def test_each_attempt_is_a_child_span_of_the_same_call(self, tracer):
        client = self.flaky_client("FF.")
        assert client.call("echo", "hi") == "hi"
        assert client.retries == 2

        (root,) = tracer.find_spans("rpc.call")
        attempts = sorted(
            tracer.find_spans("rpc.attempt"), key=lambda s: s.tags["attempt"]
        )
        assert len(attempts) == 3
        assert [s.tags["attempt"] for s in attempts] == [1, 2, 3]
        for span in attempts:
            # All attempts share the client span's trace and parent under it.
            assert span.trace_id == root.trace_id
            assert span.parent_id == root.span_id
            assert span.tags["method"] == "echo"
        # Failed attempts carry the transport error; the last one is clean.
        assert attempts[0].error == "FaultInjected"
        assert attempts[1].error == "FaultInjected"
        assert attempts[2].error is None

    def test_retry_count_tagged_on_call_span(self, tracer):
        client = self.flaky_client("F.")
        client.call("echo", "x")
        (root,) = tracer.find_spans("rpc.call")
        assert root.tags["retries"] == 1

    def test_clean_call_tags_zero_retries_and_one_attempt(self, tracer):
        client = self.flaky_client(".")
        client.call("echo", "x")
        (root,) = tracer.find_spans("rpc.call")
        assert root.tags["retries"] == 0
        (attempt,) = tracer.find_spans("rpc.attempt")
        assert attempt.tags["attempt"] == 1
        assert attempt.error is None

    def test_no_retry_policy_means_no_attempt_spans(self, tracer):
        transport = LocalTransport(_echo_server(), name=None)
        client = RPCClient(transport.open_channel())
        client.call("echo", "x")
        (root,) = tracer.find_spans("rpc.call")
        assert "retries" not in root.tags
        assert tracer.find_spans("rpc.attempt") == []

    def test_exhaustion_leaves_failed_attempt_spans(self, tracer):
        client = self.flaky_client("FFF", max_attempts=2)
        with pytest.raises(FaultInjected):
            client.call("echo", "x")
        attempts = sorted(
            tracer.find_spans("rpc.attempt"), key=lambda s: s.tags["attempt"]
        )
        assert [s.tags["attempt"] for s in attempts] == [1, 2]
        assert all(s.error == "FaultInjected" for s in attempts)

    def test_retries_work_without_tracer_installed(self):
        client = self.flaky_client("F.")
        assert client.call("echo", "ok") == "ok"
        assert client.retries == 1
