"""RPC server/client tests: messages, dispatch, error mapping, transports."""

import threading

import pytest

from repro.net.errors import (
    AuthenticationError,
    RemoteError,
    TransportClosedError,
)
from repro.net.messages import Hello, Request, Response, message_from_bytes
from repro.net.rpc import RPCClient, RPCServer, register_error_type
from repro.net.transport import (
    LocalTransport,
    TCPServerTransport,
    connect_local,
    connect_tcp,
)


class TestMessages:
    def test_request_roundtrip(self):
        req = Request("lrc_add", ("lfn", "pfn"))
        assert message_from_bytes(req.to_bytes()) == req

    def test_response_success_roundtrip(self):
        resp = Response.success([1, 2])
        assert message_from_bytes(resp.to_bytes()) == resp

    def test_response_failure_carries_type(self):
        resp = Response.failure(ValueError("bad"))
        decoded = message_from_bytes(resp.to_bytes())
        assert not decoded.ok
        assert decoded.error_type == "ValueError"
        assert decoded.error_message == "bad"

    def test_hello_roundtrip(self):
        hello = Hello(credential=b"cert", attributes={"v": 1})
        decoded = message_from_bytes(hello.to_bytes())
        assert decoded.credential == b"cert" and decoded.attributes == {"v": 1}


def make_server():
    server = RPCServer()
    server.register("echo", lambda ctx, args: list(args))
    server.register("boom", lambda ctx, args: 1 / 0)
    server.register("peer", lambda ctx, args: ctx.peer)
    return server


class TestDispatch:
    def test_success(self):
        server = make_server()
        ctx = server.handshake(Hello(), "test")
        resp = server.handle(ctx, Request("echo", (1, "a")))
        assert resp.ok and resp.value == [1, "a"]

    def test_unknown_method(self):
        server = make_server()
        ctx = server.handshake(Hello(), "test")
        resp = server.handle(ctx, Request("nope", ()))
        assert not resp.ok and resp.error_type == "NoSuchMethodError"

    def test_handler_exception_propagated(self):
        server = make_server()
        ctx = server.handshake(Hello(), "test")
        resp = server.handle(ctx, Request("boom", ()))
        assert not resp.ok and resp.error_type == "ZeroDivisionError"

    def test_counters(self):
        server = make_server()
        ctx = server.handshake(Hello(), "test")
        server.handle(ctx, Request("echo", ()))
        server.handle(ctx, Request("boom", ()))
        assert server.requests_served == 1 and server.errors_returned == 1

    def test_methods_listed(self):
        assert "echo" in make_server().methods()


class TestLocalTransport:
    def test_call_roundtrip(self):
        server = make_server()
        transport = LocalTransport(server, name="rpc-test-local")
        try:
            client = RPCClient(connect_local("rpc-test-local"))
            assert client.call("echo", 42) == [42]
        finally:
            transport.close()

    def test_unknown_endpoint(self):
        with pytest.raises(TransportClosedError):
            connect_local("does-not-exist")

    def test_closed_endpoint_rejects_new_channels(self):
        transport = LocalTransport(make_server(), name="rpc-closing")
        transport.close()
        with pytest.raises(TransportClosedError):
            connect_local("rpc-closing")

    def test_remote_error_raised(self):
        transport = LocalTransport(make_server(), name="rpc-err")
        try:
            client = RPCClient(connect_local("rpc-err"))
            with pytest.raises(RemoteError) as err:
                client.call("boom")
            assert err.value.error_type == "ZeroDivisionError"
        finally:
            transport.close()

    def test_registered_error_type_reraised(self):
        @register_error_type
        class CustomTestError(Exception):
            pass

        server = RPCServer()
        server.register(
            "fail", lambda ctx, args: (_ for _ in ()).throw(CustomTestError("x"))
        )
        transport = LocalTransport(server, name="rpc-custom-err")
        try:
            client = RPCClient(connect_local("rpc-custom-err"))
            with pytest.raises(CustomTestError):
                client.call("fail")
        finally:
            transport.close()

    def test_latency_injection(self):
        slept = []
        server = make_server()
        transport = LocalTransport(server, name="rpc-latency")
        try:
            channel = transport.open_channel(latency=0.05, sleep=slept.append)
            RPCClient(channel).call("echo")
            assert slept == [0.05]
        finally:
            transport.close()


class TestTCPTransport:
    def test_call_over_real_socket(self):
        server = make_server()
        tcp = TCPServerTransport(server)
        try:
            client = RPCClient(connect_tcp(tcp.host, tcp.port))
            assert client.call("echo", "x") == ["x"]
            assert client.call("peer").startswith("127.0.0.1:")
            client.close()
        finally:
            tcp.close()

    def test_concurrent_clients(self):
        server = make_server()
        tcp = TCPServerTransport(server)
        results = []

        def worker(i):
            client = RPCClient(connect_tcp(tcp.host, tcp.port))
            for j in range(20):
                results.append(client.call("echo", i, j))
            client.close()

        try:
            threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(results) == 80
        finally:
            tcp.close()

    def test_auth_failure_closes_connection(self):
        def reject(hello, peer):
            raise AuthenticationError("nope")

        server = RPCServer(authenticator=reject)
        tcp = TCPServerTransport(server)
        try:
            with pytest.raises(RemoteError):
                connect_tcp(tcp.host, tcp.port)
        finally:
            tcp.close()

    def test_large_payload(self):
        """A 1.25 MB Bloom-filter-sized payload crosses the socket intact."""
        server = make_server()
        tcp = TCPServerTransport(server)
        try:
            client = RPCClient(connect_tcp(tcp.host, tcp.port))
            blob = bytes(range(256)) * 5000  # 1.28 MB
            assert client.call("echo", blob) == [blob]
            client.close()
        finally:
            tcp.close()


class TestTCPLifecycle:
    def test_close_joins_handler_threads(self):
        server = make_server()
        tcp = TCPServerTransport(server)
        clients = [RPCClient(connect_tcp(tcp.host, tcp.port)) for _ in range(4)]
        for i, client in enumerate(clients):
            assert client.call("echo", i) == [i]
        handler_threads = list(tcp._threads)
        assert len(handler_threads) == 4
        tcp.close()
        # close() must reap every handler thread, even for connections
        # whose clients never said goodbye.
        assert all(not t.is_alive() for t in handler_threads)
        assert not tcp._accept_thread.is_alive()
        assert tcp._threads == []
        assert tcp._conns == set()
        for client in clients:
            client.close()

    def test_thread_list_reaped_under_connection_churn(self):
        server = make_server()
        tcp = TCPServerTransport(server)
        try:
            for i in range(30):
                client = RPCClient(connect_tcp(tcp.host, tcp.port))
                client.call("echo", i)
                client.close()
            # Give the handler threads a moment to notice the closes.
            deadline = 5.0
            import time

            start = time.monotonic()
            while (
                sum(t.is_alive() for t in tcp._threads) > 1
                and time.monotonic() - start < deadline
            ):
                time.sleep(0.01)
            # One more accept reaps the dead entries from the list.
            probe = RPCClient(connect_tcp(tcp.host, tcp.port))
            probe.call("echo", "probe")
            assert len(tcp._threads) < 30
            probe.close()
        finally:
            tcp.close()

    def test_calls_after_close_fail_cleanly(self):
        server = make_server()
        tcp = TCPServerTransport(server)
        client = RPCClient(connect_tcp(tcp.host, tcp.port))
        assert client.call("echo", 1) == [1]
        tcp.close()
        with pytest.raises((TransportClosedError, ConnectionError, OSError)):
            client.call("echo", 2)


class TestPrincipalAccounting:
    """Declared principal negotiation + per-request cost attribution."""

    def test_hello_principal_attribute(self):
        hello = Hello(attributes={"principal": "cms-prod"})
        decoded = message_from_bytes(hello.to_bytes())
        assert decoded.principal == "cms-prod"
        assert Hello().principal is None

    def test_non_string_principal_is_protocol_error(self):
        from repro.net.errors import ProtocolError

        hello = Hello(attributes={"principal": 42})
        with pytest.raises(ProtocolError):
            message_from_bytes(hello.to_bytes())

    def test_handshake_binds_declared_principal(self):
        server = make_server()
        ctx = server.handshake(
            Hello(attributes={"principal": "cms-prod"}), "test"
        )
        assert ctx.usage_principal == "cms-prod"
        assert ctx.principal is None  # declared label is not an identity

    def test_handshake_without_principal_is_anonymous(self):
        server = make_server()
        ctx = server.handshake(Hello(), "test")
        assert ctx.usage_principal == "anonymous"

    def test_handle_charges_the_connection_principal(self):
        from repro.obs.usage import UsageAccountant

        usage = UsageAccountant()
        server = RPCServer(usage=usage)
        server.register("lrc_get_mappings", lambda ctx, args: [])
        server.register("boom", lambda ctx, args: 1 / 0)
        ctx = server.handshake(
            Hello(attributes={"principal": "cms-prod"}), "test"
        )
        server.handle(ctx, Request("lrc_get_mappings", ("/cms/data/f1",)))
        server.handle(ctx, Request("boom", ()))
        payload = usage.to_dict()
        query = payload["principals"]["cms-prod"]["query"]
        assert query["requests"] == 1
        assert query["wall_time"] > 0
        # The failing unclassified call lands in class "other" with an error.
        other = payload["principals"]["cms-prod"]["other"]
        assert other["requests"] == 1 and other["errors"] == 1
        assert payload["top_principals"][0]["principal"] == "cms-prod"
        assert payload["top_prefixes"][0]["prefix"] == "/cms/data"

    def test_principal_mapper_overrides_declared_label(self):
        from repro.obs.usage import UsageAccountant

        server = RPCServer(
            usage=UsageAccountant(),
            principal_mapper=lambda dn, declared: "mapped",
        )
        ctx = server.handshake(
            Hello(attributes={"principal": "spoofed"}), "test"
        )
        assert ctx.usage_principal == "mapped"

    def test_metric_label_cardinality_is_bounded(self):
        # Mirrors the bounded `<unknown>` rpc.errors label: a flood of
        # distinct client-declared principals must not mint unbounded
        # metric label sets.
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.usage import UsageAccountant

        registry = MetricsRegistry()
        usage = UsageAccountant(metrics=registry, max_principals=2)
        server = RPCServer(metrics=registry, usage=usage)
        server.register("echo", lambda ctx, args: list(args))
        for i in range(10):
            ctx = server.handshake(
                Hello(attributes={"principal": f"tenant-{i}"}), "test"
            )
            server.handle(ctx, Request("echo", ()))
        keys = [
            key
            for key in registry.snapshot().counters
            if key.startswith("usage.requests")
        ]
        assert len(keys) == 3  # 2 exact labels + <other>
        assert any("<other>" in key for key in keys)
