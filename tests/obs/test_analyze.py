"""Pathology detectors and the store-wide analyzer sweep."""

from __future__ import annotations

import pytest

from repro.obs.analyze import (
    Detection,
    analyze_store,
    compare_baseline,
    detect_noisy_neighbor,
    detect_queue_saturation,
    detect_sawtooth,
    detect_staleness_burn,
)
from repro.obs.timeseries import SeriesStore, TimeSeries


def sawtooth_values(teeth=3, decay_steps=4):
    """100 -> decay ~25% -> snap back to 100, repeated."""
    values = []
    for _ in range(teeth):
        values.append(100.0)
        for i in range(1, decay_steps + 1):
            values.append(100.0 - 7.0 * i)
    values.append(100.0)
    return values


class TestSawtooth:
    def test_detects_each_tooth_with_period_and_amplitude(self):
        detections = detect_sawtooth(sawtooth_values(teeth=3))
        assert len(detections) == 3
        for d in detections:
            assert d.kind == "sawtooth"
            assert d.details["amplitude"] > 0.2
            assert d.details["period"] > 0
            assert d.details["peak"] == 100.0
            assert d.details["trough"] == 72.0
        # Steady-state period is peak-to-peak: 5 steps per tooth.
        assert detections[1].details["period"] == 5.0
        assert detections[2].details["period"] == 5.0

    def test_monotonic_series_is_clean(self):
        assert detect_sawtooth([float(i) for i in range(20)]) == []
        assert detect_sawtooth([float(20 - i) for i in range(20)]) == []

    def test_small_noise_is_clean(self):
        # 3% wobble: under both the decay and recovery thresholds.
        values = [100.0, 98.0, 100.0, 97.5, 99.5, 98.0, 100.0]
        assert detect_sawtooth(values) == []

    def test_accepts_point_tuples_and_timeseries(self):
        points = [(float(t * 10), v) for t, v in enumerate(sawtooth_values(1))]
        by_points = detect_sawtooth(points)
        series = TimeSeries()
        for t, v in points:
            series.append(t, v)
        by_series = detect_sawtooth(series)
        assert len(by_points) == len(by_series) == 1
        assert by_points[0].details["period"] == 50.0

    def test_too_short_series(self):
        assert detect_sawtooth([100.0, 50.0]) == []


class TestStalenessBurn:
    def test_sustained_burn_fires(self):
        ages = [31.0, 35.0, 40.0, 33.0, 29.0, 36.0]
        detections = detect_staleness_burn(ages, slo_seconds=30.0)
        assert len(detections) == 1
        d = detections[0]
        assert d.kind == "staleness_burn"
        assert d.details["worst_age"] == 40.0
        assert d.details["burn_fraction"] > 0.5

    def test_healthy_sawtooth_under_slo_is_clean(self):
        # Age ramps to just under the budget then resets (full update).
        ages = [5.0, 10.0, 15.0, 20.0, 25.0, 2.0, 7.0, 12.0]
        assert detect_staleness_burn(ages, slo_seconds=30.0) == []

    def test_below_min_samples_stays_silent(self):
        assert detect_staleness_burn([100.0, 100.0], slo_seconds=1.0) == []

    def test_critical_severity_when_always_over(self):
        ages = [50.0] * 10
        [d] = detect_staleness_burn(ages, slo_seconds=30.0)
        assert d.severity == "critical"


class TestQueueSaturation:
    def test_sustained_growth_fires(self):
        depths = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        [d] = detect_queue_saturation(depths)
        assert d.kind == "queue_saturation"
        assert d.details["end_depth"] == 32.0
        assert d.details["samples"] == 6

    def test_draining_queue_is_clean(self):
        depths = [1.0, 4.0, 9.0, 2.0, 5.0, 11.0, 3.0]
        assert detect_queue_saturation(depths) == []

    def test_shallow_queue_is_clean(self):
        # Doubles, but never reaches QUEUE_MIN_DEPTH.
        depths = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
        assert detect_queue_saturation(depths) == []

    def test_short_run_is_clean(self):
        assert detect_queue_saturation([1.0, 50.0, 100.0]) == []


class TestCompareBaseline:
    def test_within_tolerance_is_none(self):
        assert compare_baseline([95.0] * 5, [100.0] * 5) is None

    def test_regression_fires(self):
        d = compare_baseline([60.0] * 5, [100.0] * 5)
        assert d is not None and d.kind == "baseline_regression"
        assert d.severity == "critical"  # 40% drop > 2 * 15%
        assert abs(d.details["drop"] - 0.4) < 1e-9

    def test_empty_inputs(self):
        assert compare_baseline([], [1.0]) is None
        assert compare_baseline([1.0], []) is None
        assert compare_baseline([1.0], [0.0]) is None


class TestAnalyzeStore:
    def test_routes_by_key_shape(self):
        store = SeriesStore()
        for i, v in enumerate(sawtooth_values(2)):
            store.record("ops:rate", float(i), v)
        for i, v in enumerate([1.0, 2.0, 4.0, 8.0, 16.0, 32.0]):
            store.record("wal.queue_depth", float(i), v)
        for i in range(6):
            store.record("rli.staleness_age", float(i), 100.0)
        # An unclassified key never triggers any detector.
        for i, v in enumerate(sawtooth_values(2)):
            store.record("misc.metric", float(i), v)

        detections = analyze_store(store, staleness_slo=30.0)
        kinds = {d.kind for d in detections}
        assert kinds == {"sawtooth", "queue_saturation", "staleness_burn"}
        for d in detections:
            assert d.details["series"] in (
                "ops:rate",
                "wal.queue_depth",
                "rli.staleness_age",
            )

    def test_staleness_needs_slo(self):
        store = SeriesStore()
        for i in range(6):
            store.record("rli.staleness_age", float(i), 100.0)
        assert analyze_store(store) == []
        assert len(analyze_store(store, staleness_slo=30.0)) == 1

    def test_cluster_and_benchmark_keys_route_to_sawtooth(self):
        store = SeriesStore()
        for key in ("cluster.ops_rate", "lrc.add_rate"):
            for i, v in enumerate(sawtooth_values(1)):
                store.record(key, float(i), v)
        detections = analyze_store(store)
        assert {d.details["series"] for d in detections} == {
            "cluster.ops_rate",
            "lrc.add_rate",
        }


class TestNoisyNeighbor:
    def usage_store(self, shares: dict[str, float], per_tick=10.0):
        """usage.requests series, one point per second for t=0..9."""
        store = SeriesStore()
        for principal, share in shares.items():
            for t in range(10):
                store.record(
                    f"usage.requests{{principal={principal}}}",
                    float(t),
                    per_tick * share,
                )
        return store

    def trigger(self, kind="queue_saturation", start=2.0, end=8.0, **details):
        return Detection(
            kind=kind,
            summary="t",
            severity="critical",
            start=start,
            end=end,
            details=details,
        )

    def test_dominated_window_names_the_principal(self):
        store = self.usage_store({"cms": 0.8, "atlas": 0.1, "ligo": 0.1})
        [d] = detect_noisy_neighbor(
            store, [self.trigger(series="wal.queue_depth")]
        )
        assert d.kind == "noisy_neighbor"
        assert d.details["principal"] == "cms"
        assert d.details["share"] == pytest.approx(0.8)
        assert d.details["trigger"] == "queue_saturation"
        assert d.details["trigger_series"] == "wal.queue_depth"
        assert d.severity == "critical"  # inherited from the trigger
        assert (d.start, d.end) == (2.0, 8.0)

    def test_even_spread_is_quiet(self):
        store = self.usage_store({"a": 0.34, "b": 0.33, "c": 0.33})
        assert detect_noisy_neighbor(store, [self.trigger()]) == []

    def test_no_usage_series_is_quiet(self):
        store = SeriesStore()
        store.record("wal.queue_depth", 0.0, 100.0)
        assert detect_noisy_neighbor(store, [self.trigger()]) == []

    def test_below_min_requests_is_quiet(self):
        # One probe dominating an idle window is not a noisy neighbor.
        store = self.usage_store({"probe": 1.0}, per_tick=0.5)
        assert detect_noisy_neighbor(store, [self.trigger()]) == []

    def test_only_saturation_and_burn_windows_attribute(self):
        store = self.usage_store({"cms": 1.0})
        assert detect_noisy_neighbor(store, [self.trigger("sawtooth")]) == []
        assert detect_noisy_neighbor(store, [self.trigger("slo_burn")]) != []

    def test_same_window_attributed_once(self):
        # Several shards flagging one window must not duplicate the blame.
        store = self.usage_store({"cms": 0.9, "ops": 0.1})
        triggers = [self.trigger(), self.trigger(kind="slo_burn")]
        detections = detect_noisy_neighbor(store, triggers)
        assert len(detections) == 1

    def test_analyze_store_runs_the_attribution_pass(self):
        store = self.usage_store({"cms": 0.9, "ops": 0.1})
        for i, v in enumerate([1.0, 2.0, 4.0, 8.0, 16.0, 32.0]):
            store.record("wal.queue_depth", float(i), v)
        detections = analyze_store(store)
        kinds = [d.kind for d in detections]
        assert "queue_saturation" in kinds
        noisy = [d for d in detections if d.kind == "noisy_neighbor"]
        assert len(noisy) == 1
        assert noisy[0].details["principal"] == "cms"


def test_detection_to_dict_round_trip():
    d = Detection(
        kind="sawtooth",
        summary="s",
        start=1.0,
        end=2.0,
        details={"period": 5.0},
    )
    payload = d.to_dict()
    assert payload["kind"] == "sawtooth"
    assert payload["details"] == {"period": 5.0}
    import json

    json.dumps(payload)  # plain data, artifact-safe
