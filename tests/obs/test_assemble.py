"""Trace assembly: stitching, gap markers, critical-path attribution."""

from __future__ import annotations

from repro.obs.assemble import (
    TraceAssembler,
    TraceSource,
    render_critical_path,
    render_trace,
    segment_kind,
    sink_source,
    tracer_source,
)
from repro.obs.tracing import Span, SpanSink, Tracer


def make_spans():
    """A deterministic cross-node trace: client -> rpc -> server -> db.

    Layout (seconds):
      cluster.read  [0.0, 1.0)                      client
        rpc.call    [0.1, 0.9)                      client
          rpc.handle [0.2, 0.8)   node=nodeA        server
            sql.execute [0.3, 0.7)                  server (inherits nodeA)
    """
    c1 = Span("cluster.read", "t1", "c1", start=0.0, duration=1.0,
              tags={"method": "get_mappings", "shard": "nodeA"})
    c2 = Span("rpc.call", "t1", "c2", parent_id="c1", start=0.1,
              duration=0.8, tags={"method": "lrc_get_mappings"})
    s1 = Span("rpc.handle", "t1", "s1", parent_id="c2", start=0.2,
              duration=0.6, tags={"node": "nodeA"})
    s2 = Span("sql.execute", "t1", "s2", parent_id="s1", start=0.3,
              duration=0.4)
    return c1, c2, s1, s2


def list_source(name, spans):
    return TraceSource(name=name, fetch=lambda tid: list(spans))


class TestSegmentKind:
    def test_prefix_table(self):
        assert segment_kind("cluster.scatter") == "client.routing"
        assert segment_kind("rpc.call") == "net.wait"
        assert segment_kind("rpc.attempt") == "net.wait"
        assert segment_kind("rpc.handle") == "server.handle"
        assert segment_kind("acl.check") == "acl"
        assert segment_kind("sql.execute") == "db"
        assert segment_kind("wal.flush") == "wal"
        assert segment_kind("mirror_incremental") == "replication"
        assert segment_kind("update.full") == "replication"
        assert segment_kind("something.else") == "something.else"


class TestAssemble:
    def test_stitch_dedup_and_node_counts(self):
        c1, c2, s1, s2 = make_spans()
        assembler = TraceAssembler([
            list_source("client", [c1, c2]),
            list_source("nodeA", [s1, s2, c2]),  # c2 duplicated
        ])
        trace = assembler.assemble("t1")
        assert len(trace.spans) == 4
        assert trace.nodes == {"client": 2, "nodeA": 2}
        assert trace.missing == {} and trace.gaps == []
        roots = trace.tree()
        assert len(roots) == 1 and roots[0]["span"].span_id == "c1"

    def test_unreachable_source_reported_not_fatal(self):
        c1, c2, s1, s2 = make_spans()

        def boom(tid):
            raise ConnectionError("node down")

        assembler = TraceAssembler([
            list_source("client", [c1, c2]),
            TraceSource(name="nodeA", fetch=boom),
        ])
        trace = assembler.assemble("t1")
        assert "nodeA" in trace.missing
        assert "node down" in trace.missing["nodeA"]
        assert len(trace.spans) == 2

    def test_missing_parent_becomes_gap_marker(self):
        c1, c2, s1, s2 = make_spans()
        # The server's rpc.handle was never gathered: its child must hang
        # under an explicit gap node, not float up as a root span.
        assembler = TraceAssembler([
            list_source("client", [c1, c2]),
            list_source("nodeA", [s2]),
        ])
        trace = assembler.assemble("t1")
        assert trace.gaps == ["s1"]
        roots = trace.tree()
        gap_roots = [n for n in roots if n["gap"]]
        assert len(gap_roots) == 1
        assert gap_roots[0]["span_id"] == "s1"
        assert gap_roots[0]["children"][0]["span"].span_id == "s2"

    def test_wire_dict_fragments_accepted(self):
        c1, c2, s1, s2 = make_spans()
        assembler = TraceAssembler([
            list_source("client", [s.to_dict() for s in (c1, c2, s1, s2)]),
        ])
        trace = assembler.assemble("t1")
        assert len(trace.spans) == 4

    def test_other_traces_filtered_out(self):
        c1, *_ = make_spans()
        other = Span("x", "t2", "z1", start=0.0, duration=1.0)
        assembler = TraceAssembler([list_source("client", [c1, other])])
        trace = assembler.assemble("t1")
        assert [s.span_id for s in trace.spans] == ["c1"]


class TestCriticalPath:
    def test_segments_sum_exactly_to_root_duration(self):
        c1, c2, s1, s2 = make_spans()
        trace = TraceAssembler(
            [list_source("all", [c1, c2, s1, s2])]
        ).assemble("t1")
        path = trace.critical_path()
        assert abs(sum(s.duration for s in path) - 1.0) < 1e-12
        payload = trace.to_dict()
        assert abs(payload["coverage"] - 1.0) < 1e-9

    def test_attribution_by_kind_and_node(self):
        c1, c2, s1, s2 = make_spans()
        trace = TraceAssembler(
            [list_source("all", [c1, c2, s1, s2])]
        ).assemble("t1")
        by_kind: dict[str, float] = {}
        for seg in trace.critical_path():
            by_kind[seg.kind] = by_kind.get(seg.kind, 0.0) + seg.duration
        # Own time: cluster.read 0.2, rpc.call gaps 0.2, handle 0.2, db 0.4
        assert abs(by_kind["client.routing"] - 0.2) < 1e-12
        assert abs(by_kind["net.wait"] - 0.2) < 1e-12
        assert abs(by_kind["server.handle"] - 0.2) < 1e-12
        assert abs(by_kind["db"] - 0.4) < 1e-12
        # sql.execute has no node tag: it inherits nodeA from rpc.handle.
        db_seg = next(s for s in trace.critical_path() if s.kind == "db")
        assert db_seg.node == "nodeA"

    def test_gap_marker_children_still_attributed(self):
        c1, c2, s1, s2 = make_spans()
        trace = TraceAssembler(
            [list_source("partial", [c1, c2, s2])]
        ).assemble("t1")
        path = trace.critical_path()
        # Root is still the client span; the db time shows via the
        # rpc.call cursor even though rpc.handle is missing.
        assert trace.root_duration() == 1.0
        assert sum(s.duration for s in path) <= 1.0 + 1e-12

    def test_empty_trace(self):
        trace = TraceAssembler([list_source("none", [])]).assemble("t1")
        assert trace.critical_path() == []
        assert trace.root_duration() == 0.0
        assert trace.to_dict()["coverage"] == 0.0


class TestSources:
    def test_tracer_source_partitions_by_node_tag(self):
        tracer = Tracer()
        c1, c2, s1, s2 = make_spans()
        with tracer._lock:
            tracer._traces["t1"] = [c1, c2, s1, s2]
        client = tracer_source("client", tracer).fetch("t1")
        assert {s.span_id for s in client} == {"c1", "c2", "s1", "s2"}
        node_a = tracer_source("nodeA", tracer, node="nodeA").fetch("t1")
        assert {s.span_id for s in node_a} == {"s1"}

    def test_sink_source(self):
        sink = SpanSink()
        err = Span("op", "t9", "e1", duration=0.001, error="Boom")
        sink.offer(err)
        spans = sink_source("sinky", sink).fetch("t9")
        assert [s.span_id for s in spans] == ["e1"]


class TestRenderers:
    def test_render_trace_marks_gaps_and_missing(self):
        c1, c2, s1, s2 = make_spans()

        def boom(tid):
            raise OSError("unreachable")

        assembler = TraceAssembler([
            list_source("client", [c1, c2]),
            list_source("nodeA", [s2]),
            TraceSource(name="nodeB", fetch=boom),
        ])
        payload = assembler.assemble("t1").to_dict()
        text = render_trace(payload)
        assert "node nodeB: MISSING" in text
        assert "[gap: missing span s1]" in text
        assert "cluster.read" in text

    def test_render_critical_path_rolls_up_by_kind(self):
        c1, c2, s1, s2 = make_spans()
        payload = TraceAssembler(
            [list_source("all", [c1, c2, s1, s2])]
        ).assemble("t1").to_dict()
        text = render_critical_path(payload)
        assert "by kind:" in text
        assert "db" in text and "net.wait" in text
        assert "100.0% attributed" in text
