"""Cluster-wide collector: aggregation, consistency, failure handling."""

from __future__ import annotations

import pytest

from repro.obs.collector import (
    ClusterCollector,
    NodeSource,
    client_source,
    registry_source,
    server_source,
)
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot


def make_registries(*names):
    return {name: MetricsRegistry() for name in names}


def make_collector(registries, **kwargs):
    sources = [registry_source(n, r) for n, r in registries.items()]
    return ClusterCollector(sources, **kwargs)


class TestConstruction:
    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            ClusterCollector([])

    def test_rejects_duplicate_names(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="duplicate"):
            ClusterCollector(
                [registry_source("a", registry), registry_source("a", registry)]
            )

    def test_node_names(self):
        collector = make_collector(make_registries("a", "b"))
        assert collector.node_names == ["a", "b"]


class TestAggregation:
    def test_cluster_ops_rate_is_exact_sum_of_node_rates(self):
        """The invariant ``rls top`` renders: per-node rates sum to the
        cluster rate within the same round."""
        registries = make_registries("lrc-1", "lrc-2", "rli-1")
        collector = make_collector(registries)
        collector.scrape_once(now=0.0)  # priming round
        registries["lrc-1"].counter("rpc.requests", method="add").inc(30)
        registries["lrc-2"].counter("rpc.requests", method="add").inc(50)
        registries["rli-1"].counter("rpc.requests", method="query_rli").inc(20)
        sample = collector.scrape_once(now=2.0)
        rates = {name: node.ops_rate for name, node in sample.nodes.items()}
        assert rates == {"lrc-1": 15.0, "lrc-2": 25.0, "rli-1": 10.0}
        assert sample.cluster_ops_rate == sum(rates.values())
        assert collector.store.latest("cluster.ops_rate") == 50.0
        for name, rate in rates.items():
            key = f"node.ops_rate{{node={name}}}"
            assert collector.store.latest(key) == rate

    def test_wal_queue_depth_sums_and_staleness_maxes(self):
        registries = make_registries("a", "b")
        registries["a"].gauge("wal.queue_depth").set(10.0)
        registries["b"].gauge("wal.queue_depth").set(7.0)
        registries["a"].gauge("rli.staleness_age").set(3.0)
        registries["b"].gauge("rli.staleness_age").set(9.0)
        collector = make_collector(registries)
        collector.scrape_once(now=0.0)
        assert collector.store.latest("cluster.wal_queue_depth") == 17.0
        assert collector.store.latest("cluster.rli_staleness_age") == 9.0

    def test_labeled_gauges_aggregate(self):
        registry = MetricsRegistry()
        registry.gauge("wal.queue_depth", wal="x").set(4.0)
        registry.gauge("wal.queue_depth", wal="y").set(6.0)
        collector = make_collector({"n": registry})
        sample = collector.scrape_once(now=0.0)
        assert sample.nodes["n"].wal_queue_depth == 10.0

    def test_priming_round_records_gauges_but_no_rates(self):
        registries = make_registries("a")
        registries["a"].gauge("wal.queue_depth").set(5.0)
        collector = make_collector(registries)
        sample = collector.scrape_once(now=0.0)
        assert sample.nodes["a"].up
        assert collector.store.latest("cluster.ops_rate") is None
        assert collector.store.latest("cluster.wal_queue_depth") == 5.0
        assert collector.store.latest("cluster.nodes_up") == 1.0


class TestNodeFailure:
    def test_down_node_is_excluded_from_aggregates(self):
        good = MetricsRegistry()

        def bad_fetch():
            raise ConnectionError("boom")

        collector = ClusterCollector(
            [
                registry_source("good", good),
                NodeSource(name="bad", fetch=bad_fetch),
            ]
        )
        collector.scrape_once(now=0.0)
        good.counter("rpc.requests").inc(10)
        sample = collector.scrape_once(now=1.0)
        assert sample.nodes["good"].up
        assert not sample.nodes["bad"].up
        assert "ConnectionError" in sample.nodes["bad"].error
        assert sample.nodes_up == 1
        assert sample.cluster_ops_rate == 10.0
        assert collector.store.latest("cluster.nodes_up") == 1.0
        assert collector.store.latest("node.up{node=bad}") == 0.0
        assert collector.store.latest("node.up{node=good}") == 1.0

    def test_node_recovers_after_transient_failure(self):
        registry = MetricsRegistry()
        fail = {"on": False}

        def fetch():
            if fail["on"]:
                raise TimeoutError("slow")
            return registry.snapshot()

        collector = ClusterCollector([NodeSource(name="n", fetch=fetch)])
        collector.scrape_once(now=0.0)
        fail["on"] = True
        assert not collector.scrape_once(now=1.0).nodes["n"].up
        fail["on"] = False
        assert collector.scrape_once(now=2.0).nodes["n"].up


class TestSources:
    def test_server_source_uses_config_name(self, server):
        source = server_source(server)
        assert source.name == server.config.name
        assert isinstance(source.fetch(), MetricsSnapshot)

    def test_client_source_round_trips_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("rpc.requests").inc(3)

        class FakeClient:
            def metrics(self):
                return registry.snapshot().to_dict()

        snapshot = client_source("remote", FakeClient()).fetch()
        assert snapshot.counters["rpc.requests"] == 3


def test_background_collection():
    registries = make_registries("a")
    counter = registries["a"].counter("rpc.requests")
    with make_collector(registries, interval=0.01) as collector:
        import time as _time

        deadline = _time.monotonic() + 2.0
        while collector.rounds < 3 and _time.monotonic() < deadline:
            counter.inc()
            _time.sleep(0.005)
    assert collector.rounds >= 3
    assert collector.store.latest("cluster.nodes_up") == 1.0
