"""Flight recorder unit tests: wrap survival, error retention, dumps."""

from __future__ import annotations

import threading

import pytest

from repro.obs import tracing
from repro.obs.flight import EVENT_KINDS, FlightEvent, FlightRecorder
from repro.obs.tracing import Tracer


class TestRecord:
    def test_basic_event_fields(self):
        recorder = FlightRecorder(capacity=8, clock=lambda: 12.5)
        event = recorder.record("rpc.in", detail="query", method="query")
        assert event.kind == "rpc.in"
        assert event.detail == "query"
        assert event.t == 12.5
        assert event.error is False
        assert event.data == {"method": "query"}
        assert event.seq > 0

    def test_sequence_totally_ordered(self):
        recorder = FlightRecorder(capacity=8)
        a = recorder.record("rpc.in")
        b = recorder.record("rpc.out")
        assert b.seq > a.seq
        assert [e.seq for e in recorder.events()] == sorted(
            e.seq for e in recorder.events()
        )

    def test_explicit_span_context(self):
        recorder = FlightRecorder(capacity=8)
        event = recorder.record("wal.flush", span=("t1", "s1"))
        assert (event.trace_id, event.span_id) == ("t1", "s1")

    def test_adopts_installed_tracer_context(self):
        tracer = Tracer()
        tracing.install_tracer(tracer)
        try:
            recorder = FlightRecorder(capacity=8)
            with tracer.span("rpc.handle") as span:
                event = recorder.record("rpc.in")
            assert event.trace_id == span.trace_id
            assert event.span_id == span.span_id
        finally:
            tracing.install_tracer(None)

    def test_no_tracer_leaves_context_none(self):
        recorder = FlightRecorder(capacity=8)
        event = recorder.record("rpc.in")
        assert event.trace_id is None and event.span_id is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_event_dict_round_trip(self):
        event = FlightEvent(
            seq=3, t=1.0, kind="error", detail="boom",
            trace_id="t", span_id="s", error=True, data={"x": 1},
        )
        assert FlightEvent.from_dict(event.to_dict()) == event

    def test_known_kinds_are_documented(self):
        assert "error" in EVENT_KINDS and "rpc.in" in EVENT_KINDS


class TestRetention:
    def test_ring_survives_wrap(self):
        recorder = FlightRecorder(capacity=4, error_capacity=2)
        for i in range(10):
            recorder.record("rpc.in", detail=f"e{i}")
        events = recorder.events()
        assert len(events) == 4
        assert [e.detail for e in events] == ["e6", "e7", "e8", "e9"]

    def test_errors_survive_healthy_flood(self):
        """Acceptance criterion: error events are kept preferentially."""
        recorder = FlightRecorder(capacity=8, error_capacity=4)
        err = recorder.record("error", detail="boom", error=True)
        for i in range(100):
            recorder.record("rpc.in", detail=f"ok{i}")
        kinds = [e.kind for e in recorder.events()]
        assert "error" in kinds
        retained = [e for e in recorder.events() if e.error]
        assert retained[0].seq == err.seq
        # The union is seq-sorted with the old error first.
        assert recorder.events()[0].seq == err.seq

    def test_error_ring_evicts_oldest_error(self):
        recorder = FlightRecorder(capacity=4, error_capacity=2)
        errs = [
            recorder.record("error", detail=f"b{i}", error=True)
            for i in range(5)
        ]
        for i in range(50):
            recorder.record("rpc.in")
        retained = recorder.errors()
        assert [e.seq for e in retained] == [errs[3].seq, errs[4].seq]

    def test_no_duplicate_when_error_still_recent(self):
        recorder = FlightRecorder(capacity=8, error_capacity=4)
        recorder.record("error", error=True)
        assert len(recorder.events()) == 1

    def test_default_error_capacity(self):
        assert FlightRecorder(capacity=256).error_capacity == 64
        assert FlightRecorder(capacity=8).error_capacity == 16

    def test_stats(self):
        recorder = FlightRecorder(capacity=4, error_capacity=2)
        for i in range(6):
            recorder.record("rpc.in")
        recorder.record("error", error=True)
        stats = recorder.stats()
        assert stats["recorded"] == 7
        assert stats["errors"] == 1
        assert stats["recent"] == 4
        assert stats["retained_errors"] == 1
        assert stats["capacity"] == 4
        assert stats["error_capacity"] == 2


class TestDump:
    def test_dump_freezes_window(self):
        recorder = FlightRecorder(capacity=4, clock=lambda: 7.0)
        recorder.record("rpc.in", detail="before")
        recorder.record("error", detail="boom", error=True)
        snapshot = recorder.dump(reason="query: RuntimeError")
        assert snapshot["reason"] == "query: RuntimeError"
        assert snapshot["t"] == 7.0
        assert [e["detail"] for e in snapshot["events"]] == ["before", "boom"]
        assert recorder.last_dump is snapshot

    def test_dump_survives_subsequent_wrap(self):
        recorder = FlightRecorder(capacity=4, error_capacity=2)
        recorder.record("error", detail="boom", error=True)
        dump = recorder.dump(reason="boom")
        for i in range(50):
            recorder.record("rpc.in")
        assert recorder.last_dump is dump
        assert any(e["detail"] == "boom" for e in recorder.last_dump["events"])

    def test_to_dict_limit_keeps_tail(self):
        recorder = FlightRecorder(capacity=16)
        for i in range(10):
            recorder.record("rpc.in", detail=f"e{i}")
        payload = recorder.to_dict(limit=3)
        assert [e["detail"] for e in payload["events"]] == ["e7", "e8", "e9"]
        assert payload["stats"]["recorded"] == 10
        assert payload["last_dump"] is None

    def test_clear(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("error", error=True)
        recorder.dump(reason="x")
        recorder.clear()
        assert recorder.events() == []
        assert recorder.last_dump is None


class TestThreadSafety:
    def test_concurrent_producers_keep_invariants(self):
        recorder = FlightRecorder(capacity=32, error_capacity=8)

        def produce(tag):
            for i in range(200):
                recorder.record(
                    "rpc.in" if i % 10 else "error",
                    detail=f"{tag}-{i}",
                    error=(i % 10 == 0),
                )

        threads = [
            threading.Thread(target=produce, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = recorder.stats()
        assert stats["recorded"] == 800
        assert stats["errors"] == 80
        assert stats["recent"] <= 32
        assert stats["retained_errors"] <= 8
        seqs = [e.seq for e in recorder.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
