"""Observability integration tests: live servers, span trees, surfaces."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.core.client import connect, connect_tcp_server
from repro.core.config import ServerConfig, ServerRole
from repro.core.server import RLSServer
from repro.net.http_gateway import HTTPGateway
from repro.obs import tracing
from repro.obs.metrics import MetricsSnapshot
from repro.obs.tracing import Tracer, walk_tree


@pytest.fixture
def tracer():
    """A process-wide tracer, removed again afterwards."""
    t = Tracer()
    tracing.install_tracer(t)
    yield t
    tracing.install_tracer(None)


@pytest.fixture
def traced_server(tracer):
    """LRC+RLI server with per-commit WAL flushes so wal.flush spans show."""
    server = RLSServer(
        ServerConfig(
            name="obs-int-server",
            role=ServerRole.BOTH,
            sync_latency=0.0,
            flush_on_commit=True,
        )
    ).start()
    yield server
    server.stop()


def _tree_names(tracer, trace_id):
    """(depth, name) pairs of one trace's span tree."""
    return [
        (depth, span.name)
        for depth, span in walk_tree(tracer.span_tree(trace_id))
    ]


class TestSpanTree:
    def test_create_mapping_span_tree(self, tracer, traced_server):
        """One client add covers transport, dispatch, ACL, SQL, and WAL."""
        client = connect(traced_server.config.name)
        client.create("span-lfn", "span-pfn")
        client.close()

        (root,) = tracer.find_spans("rpc.call")
        assert root.tags["method"] == "lrc_create_mapping"
        names = _tree_names(tracer, root.trace_id)
        assert names[0] == (0, "rpc.call")
        # Server-side work nests under the client span (LocalTransport runs
        # the handler in the caller's thread).
        assert (1, "transport.decode") in names
        assert (1, "rpc.handle") in names
        assert (2, "acl.check") in names
        assert (2, "sql.execute") in names
        assert (2, "wal.flush") in names

        handles = {s.name: s for _, s in walk_tree(tracer.span_tree(root.trace_id))}
        assert handles["rpc.handle"].tags["method"] == "lrc_create_mapping"
        assert handles["acl.check"].tags["privilege"] == "lrc_write"
        assert all(s.error is None for s in tracer.spans(root.trace_id))

    def test_query_span_tree_has_no_wal_flush(self, tracer, traced_server):
        client = connect(traced_server.config.name)
        client.create("q-lfn", "q-pfn")
        tracer.clear()
        assert client.get_mappings("q-lfn") == ["q-pfn"]
        client.close()

        (root,) = tracer.find_spans("rpc.call")
        assert root.tags["method"] == "lrc_get_mappings"
        names = [name for _, name in _tree_names(tracer, root.trace_id)]
        assert "sql.execute" in names
        assert "wal.flush" not in names  # reads don't touch the log

    def test_tcp_trace_propagates_via_wire_context(self, tracer):
        """Over TCP the server span adopts the Request's (trace, span) ids."""
        server = RLSServer(
            ServerConfig(
                name="obs-tcp-server",
                role=ServerRole.LRC,
                tcp=True,
                sync_latency=0.0,
            )
        ).start()
        try:
            host, port = server.tcp_address
            client = connect_tcp_server(host, port)
            client.create("tcp-span-lfn", "tcp-span-pfn")
            client.close()
        finally:
            server.stop()

        roots = [
            s
            for s in tracer.find_spans("rpc.call")
            if s.tags.get("method") == "lrc_create_mapping"
        ]
        (root,) = roots
        # The server thread's spans joined the client's trace.
        names = [name for _, name in _tree_names(tracer, root.trace_id)]
        assert "rpc.handle" in names
        assert "sql.execute" in names
        handles = {s.name: s for s in tracer.spans(root.trace_id)}
        assert handles["rpc.handle"].parent_id == root.span_id


class TestServerCounters:
    def test_round_trip_increments_counters(self, traced_server):
        before = traced_server.metrics.snapshot()
        client = connect(traced_server.config.name)
        client.create("cnt-lfn", "cnt-pfn")
        assert client.get_mappings("cnt-lfn") == ["cnt-pfn"]
        client.close()
        delta = traced_server.metrics.snapshot().delta(before)

        assert delta.counters["rpc.requests{method=lrc_create_mapping}"] == 1
        assert delta.counters["rpc.requests{method=lrc_get_mappings}"] == 1
        assert delta.counters["lrc.mappings_created"] == 1
        assert delta.counters["wal.records_appended"] >= 1
        assert delta.counters["net.bytes_in{transport=local}"] > 0
        assert delta.counters["net.bytes_out{transport=local}"] > 0
        assert delta.counters.get("rpc.errors{method=lrc_create_mapping}", 0) == 0

        hist = delta.histograms["rpc.latency{method=lrc_create_mapping}"]
        assert hist.count == 1
        flush = delta.histograms["wal.flush_latency"]
        assert flush.count >= 1

    def test_error_increments_error_counter(self, traced_server):
        from repro.core.errors import MappingNotFoundError

        client = connect(traced_server.config.name)
        with pytest.raises(MappingNotFoundError):
            client.get_mappings("does-not-exist")
        client.close()
        snap = traced_server.metrics.snapshot()
        assert snap.counters["rpc.errors{method=lrc_get_mappings}"] == 1
        # Failed requests still record a latency observation.
        assert snap.histograms["rpc.latency{method=lrc_get_mappings}"].count == 1

    def test_gauge_functions_sampled(self, traced_server):
        client = connect(traced_server.config.name)
        client.create("g-lfn", "g-pfn")
        client.close()
        gauges = traced_server.metrics.snapshot().gauges
        assert gauges["lrc.lfns"] == 1
        assert gauges["lrc.mappings"] == 1


class TestExposureSurfaces:
    def test_stats_rpc_includes_metrics(self, traced_server):
        client = connect(traced_server.config.name)
        client.create("s-lfn", "s-pfn")
        stats = client.stats()
        metrics = MetricsSnapshot.from_dict(stats["metrics"])
        client.close()
        assert metrics.counters["lrc.mappings_created"] == 1

    def test_metrics_rpc_and_text(self, traced_server):
        client = connect(traced_server.config.name)
        client.create("m-lfn", "m-pfn")
        snap = MetricsSnapshot.from_dict(client.metrics())
        text = client.metrics_text()
        client.close()
        assert snap.counters["lrc.mappings_created"] == 1
        assert 'rpc_requests{method="lrc_create_mapping"} 1' in text

    def test_http_metrics_endpoint(self, traced_server):
        gw = HTTPGateway(traced_server.config.name)
        try:
            with urllib.request.urlopen(f"{gw.url}/mappings/nope", timeout=10):
                pass
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        try:
            with urllib.request.urlopen(f"{gw.url}/metrics", timeout=10) as rsp:
                assert rsp.status == 200
                assert rsp.headers["Content-Type"].startswith("text/plain")
                body = rsp.read().decode()
        finally:
            gw.close()
        assert "# TYPE rpc_requests counter" in body
        assert 'rpc_requests{method="lrc_get_mappings"}' in body

    def test_admin_stats_metrics_survive_json(self, traced_server):
        """The snapshot dict is JSON-serialisable end to end."""
        client = connect(traced_server.config.name)
        client.create("j-lfn", "j-pfn")
        stats = client.stats()
        client.close()
        restored = MetricsSnapshot.from_dict(
            json.loads(json.dumps(stats["metrics"]))
        )
        assert restored.counters["lrc.mappings_created"] == 1


class TestSoftStateMetrics:
    def test_update_cycle_metrics(self, make_server):
        rli = make_server(ServerRole.RLI)
        lrc = make_server(ServerRole.LRC)
        client = connect(lrc.config.name)
        client.create("u-lfn", "u-pfn")
        client.add_rli(rli.config.name)
        client.trigger_full_update()
        client.close()

        lrc_snap = lrc.metrics.snapshot()
        assert lrc_snap.counters["updates.sent{kind=full}"] == 1
        assert lrc_snap.counters["updates.names_sent"] >= 1
        assert lrc_snap.histograms["updates.duration{kind=full}"].count == 1

        rli_snap = rli.metrics.snapshot()
        assert rli_snap.counters["rli.updates_applied{kind=full}"] == 1
        assert rli_snap.gauges["rli.mappings"] == 1
        assert rli_snap.gauges["rli.staleness_age"] >= 0.0
