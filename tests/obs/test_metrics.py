"""Metrics unit tests: bucketing, percentile math, merging, concurrency."""

from __future__ import annotations

import threading

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    NULL_REGISTRY,
    NUM_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    bucket_index,
    merge_snapshots,
    metric_key,
    split_metric_key,
)


class TestBucketing:
    def test_zero_lands_in_first_bucket(self):
        assert bucket_index(0.0) == 0

    def test_bounds_are_doubling(self):
        for lo, hi in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert hi == lo * 2

    def test_bucket_edges_are_inclusive_of_bound(self):
        # bisect_left: a value exactly on a bound goes into that bound's bucket.
        assert bucket_index(BUCKET_BOUNDS[3]) == 3
        assert bucket_index(BUCKET_BOUNDS[3] * 1.01) == 4

    def test_overflow_bucket(self):
        assert bucket_index(BUCKET_BOUNDS[-1] * 10) == NUM_BUCKETS

    def test_observe_negative_clamped(self):
        h = Histogram()
        h.observe(-1.0)
        snap = h.snapshot()
        assert snap.count == 1
        assert snap.min == 0.0


class TestPercentiles:
    def test_empty_histogram(self):
        h = Histogram()
        assert h.percentile(95) == 0.0

    def test_single_value_extremes(self):
        h = Histogram()
        h.observe(0.5)
        snap = h.snapshot()
        assert snap.percentile(0) == 0.5
        assert snap.percentile(100) == 0.5

    def test_percentile_within_bucket_factor(self):
        """Log bucketing guarantees estimates within a factor of 2."""
        h = Histogram()
        values = [0.001 * (i + 1) for i in range(1000)]  # 1ms..1s uniform
        for v in values:
            h.observe(v)
        snap = h.snapshot()
        for p in (50, 95, 99):
            exact = values[int(p / 100 * len(values)) - 1]
            estimate = snap.percentile(p)
            assert exact / 2 <= estimate <= exact * 2

    def test_p50_of_bimodal(self):
        h = Histogram()
        for _ in range(100):
            h.observe(0.0001)
        for _ in range(100):
            h.observe(1.0)
        # p25 must sit in the fast mode, p75 in the slow mode.
        snap = h.snapshot()
        assert snap.percentile(25) < 0.01
        assert snap.percentile(75) > 0.5

    def test_sum_and_extremes(self):
        h = Histogram()
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        snap = h.snapshot()
        assert snap.count == 3
        assert abs(snap.sum - 0.6) < 1e-9
        assert snap.min == 0.1
        assert snap.max == 0.3


class TestSnapshotAlgebra:
    def _hist_snapshot(self, values) -> HistogramSnapshot:
        h = Histogram()
        for v in values:
            h.observe(v)
        return h.snapshot()

    def test_merge_adds_counts(self):
        a = self._hist_snapshot([0.1, 0.2])
        b = self._hist_snapshot([0.4])
        merged = a.merge(b)
        assert merged.count == 3
        assert abs(merged.sum - 0.7) < 1e-9
        assert merged.min == 0.1
        assert merged.max == 0.4

    def test_merge_empty_keeps_min(self):
        a = self._hist_snapshot([0.1])
        empty = self._hist_snapshot([])
        assert a.merge(empty).min == 0.1
        assert empty.merge(a).min == 0.1

    def test_delta_isolates_interval(self):
        h = Histogram()
        h.observe(0.1)
        before = h.snapshot()
        h.observe(0.4)
        h.observe(0.4)
        delta = h.snapshot().delta(before)
        assert delta.count == 2
        assert abs(delta.sum - 0.8) < 1e-9

    def test_dict_roundtrip(self):
        snap = self._hist_snapshot([0.01, 0.5])
        assert HistogramSnapshot.from_dict(snap.to_dict()) == snap

    def test_registry_snapshot_merge_and_delta(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("ops").inc(5)
        r2.counter("ops").inc(7)
        r1.histogram("lat").observe(0.1)
        r2.histogram("lat").observe(0.2)
        merged = merge_snapshots([r1.snapshot(), r2.snapshot()])
        assert merged.counters["ops"] == 12
        assert merged.histograms["lat"].count == 2

        before = r1.snapshot()
        r1.counter("ops").inc(3)
        delta = r1.snapshot().delta(before)
        assert delta.counters["ops"] == 3

    def test_snapshot_dict_roundtrip(self):
        r = MetricsRegistry()
        r.counter("a", kind="x").inc()
        r.gauge("g").set(2.5)
        r.histogram("h").observe(0.3)
        snap = r.snapshot()
        restored = MetricsSnapshot.from_dict(snap.to_dict())
        assert restored.counters == snap.counters
        assert restored.gauges == snap.gauges
        assert restored.histograms == snap.histograms


class TestMetricKeys:
    def test_plain_name(self):
        assert metric_key("rpc.requests", {}) == "rpc.requests"
        assert split_metric_key("rpc.requests") == ("rpc.requests", {})

    def test_labels_sorted_and_roundtrip(self):
        key = metric_key("rpc.latency", {"method": "add", "b": "1"})
        assert key == "rpc.latency{b=1,method=add}"
        assert split_metric_key(key) == (
            "rpc.latency",
            {"b": "1", "method": "add"},
        )


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("x", a="1") is r.counter("x", a="1")
        assert r.counter("x", a="1") is not r.counter("x", a="2")

    def test_gauge_fn_sampled_at_snapshot(self):
        r = MetricsRegistry()
        state = {"v": 1.0}
        r.register_gauge_fn("depth", lambda: state["v"])
        assert r.snapshot().gauges["depth"] == 1.0
        state["v"] = 9.0
        assert r.snapshot().gauges["depth"] == 9.0

    def test_failing_gauge_fn_does_not_break_snapshot(self):
        r = MetricsRegistry()
        r.counter("ok").inc()
        r.register_gauge_fn("boom", lambda: 1 / 0)
        snap = r.snapshot()
        assert snap.counters["ok"] == 1
        assert "boom" not in snap.gauges

    def test_null_registry_is_noop(self):
        assert NULL_REGISTRY.enabled is False
        c = NULL_REGISTRY.counter("x")
        h = NULL_REGISTRY.histogram("y")
        assert c.noop and h.noop
        c.inc()
        h.observe(1.0)
        assert c.value == 0
        assert h.count == 0
        assert NULL_REGISTRY.snapshot().counters == {}

    def test_real_instruments_advertise_not_noop(self):
        assert Counter().noop is False
        assert Gauge().noop is False
        assert Histogram().noop is False

    def test_render_text_format(self):
        r = MetricsRegistry()
        r.counter("rpc.requests", method="add").inc(3)
        r.gauge("wal.queue_depth").set(2)
        r.histogram("rpc.latency", method="add").observe(0.004)
        text = r.render_text()
        assert 'rpc_requests{method="add"} 3' in text
        assert "wal_queue_depth 2" in text
        assert 'rpc_latency{method="add",quantile="0.95"}' in text
        assert 'rpc_latency_count{method="add"} 1' in text
        assert "# TYPE rpc_requests counter" in text


class TestConcurrency:
    def test_concurrent_counter_increments(self):
        r = MetricsRegistry()
        n_threads, n_iters = 8, 5000

        def work():
            c = r.counter("hits")
            for _ in range(n_iters):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.snapshot().counters["hits"] == n_threads * n_iters

    def test_concurrent_histogram_observers_and_snapshots(self):
        """Writers racing a snapshotting reader never corrupt totals."""
        r = MetricsRegistry()
        h = r.histogram("lat")
        n_threads, n_iters = 6, 2000
        stop = threading.Event()
        snapshots = []

        def writer():
            for i in range(n_iters):
                h.observe(0.0001 * (1 + i % 64))

        def reader():
            while not stop.is_set():
                snapshots.append(h.snapshot())

        threads = [threading.Thread(target=writer) for _ in range(n_threads)]
        snapper = threading.Thread(target=reader)
        snapper.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        snapper.join()

        final = h.snapshot()
        assert final.count == n_threads * n_iters
        assert sum(final.counts) == final.count
        # Every mid-flight snapshot is internally consistent too.
        for snap in snapshots:
            assert sum(snap.counts) == snap.count
