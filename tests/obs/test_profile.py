"""Deterministic sampling-profiler tests: synthetic frames, virtual clock.

The profiler's frame source and clock are injectable, so every test here
drives ``sample_once`` directly with hand-built fake frames and asserts
*exact* folded-stack counts, role attribution, self-metering, and
stuck-thread detection — no real threads, no sleeps, no timing slack.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import profile as profile_mod
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    IDLE_FRAME_NAMES,
    SamplingProfiler,
    StackProfile,
    current_role,
    fold_stack,
    frame_label,
    register_thread,
    registered_threads,
    thread_role,
    unregister_thread,
)


class FakeCode:
    def __init__(self, name, filename):
        self.co_name = name
        self.co_filename = filename


class FakeFrame:
    """Stands in for a Python frame: f_code + f_back chain."""

    def __init__(self, name, filename="fake.py", back=None):
        self.f_code = FakeCode(name, filename)
        self.f_back = back


def make_stack(*labels):
    """Leaf frame for a root→leaf label chain of (filename, name) pairs."""
    frame = None
    for filename, name in labels:
        frame = FakeFrame(name, filename=filename, back=frame)
    return frame


def fake_clock(step=0.001, start=0.0):
    """Monotonic clock advancing ``step`` per call."""
    state = {"t": start - step}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


@pytest.fixture(autouse=True)
def clean_registry():
    """Isolate the process-wide thread-role registry per test."""
    with profile_mod._registry_lock:
        saved = dict(profile_mod._thread_roles)
    yield
    with profile_mod._registry_lock:
        profile_mod._thread_roles.clear()
        profile_mod._thread_roles.update(saved)


class TestFolding:
    def test_frame_label_strips_path_and_extension(self):
        frame = FakeFrame("handle", filename="/src/repro/net/rpc.py")
        assert frame_label(frame) == "rpc:handle"

    def test_frame_label_windows_separator(self):
        frame = FakeFrame("flush", filename="C:\\repro\\db\\wal.py")
        assert frame_label(frame) == "wal:flush"

    def test_fold_stack_root_first_role_prefix(self):
        leaf = make_stack(
            ("server.py", "serve"), ("rpc.py", "handle"), ("lrc.py", "query")
        )
        folded = fold_stack(leaf, "rpc.worker")
        assert folded == "rpc.worker;server:serve;rpc:handle;lrc:query"

    def test_fold_stack_truncates_deep_stacks_at_root(self):
        leaf = make_stack(*[("m.py", f"f{i}") for i in range(10)])
        folded = fold_stack(leaf, "r", max_depth=3)
        # The three leaf-most frames survive; root-side frames drop.
        assert folded == "r;m:f7;m:f8;m:f9"


class TestStackProfile:
    def test_add_and_samples(self):
        p = StackProfile()
        p.add("r;a:b")
        p.add("r;a:b")
        p.add("r;c:d", count=3)
        assert p.stacks == {"r;a:b": 2, "r;c:d": 3}
        assert p.samples == 5

    def test_merge_sums_disjoint_and_shared(self):
        a = StackProfile({"r;x": 2}, samples=2)
        b = StackProfile({"r;x": 1, "s;y": 4}, samples=5)
        merged = a.merge(b)
        assert merged.stacks == {"r;x": 3, "s;y": 4}
        assert merged.samples == 7
        # Merge is non-destructive.
        assert a.stacks == {"r;x": 2}

    def test_delta_clamps_at_zero(self):
        before = StackProfile({"r;x": 5, "r;gone": 3}, samples=8)
        after = StackProfile({"r;x": 9, "r;new": 2}, samples=11)
        window = after.delta(before)
        assert window.stacks == {"r;x": 4, "r;new": 2}
        assert window.samples == 6

    def test_by_role_groups_on_prefix(self):
        p = StackProfile({"rpc.worker;a": 2, "rpc.worker;b": 1, "updates;c": 4})
        assert p.by_role() == {"rpc.worker": 3, "updates": 4}

    def test_top_orders_by_count_then_stack(self):
        p = StackProfile({"r;b": 3, "r;a": 3, "r;c": 9})
        assert p.top(2) == [("r;c", 9), ("r;a", 3)]

    def test_render_folded_flamegraph_lines(self):
        p = StackProfile({"r;b:f": 2, "r;a:g": 7})
        assert p.render_folded() == "r;a:g 7\nr;b:f 2"

    def test_dict_round_trip(self):
        p = StackProfile({"r;a": 2}, samples=2)
        clone = StackProfile.from_dict(p.to_dict())
        assert clone.stacks == p.stacks
        assert clone.samples == p.samples

    def test_len_and_bool(self):
        assert not StackProfile()
        assert len(StackProfile({"r;a": 1, "r;b": 1})) == 2


class TestThreadRegistry:
    def test_register_and_current_role(self):
        register_thread("rpc.worker", ident=991)
        assert current_role(991) == "rpc.worker"
        assert registered_threads()[991] == "rpc.worker"
        unregister_thread(ident=991)
        assert current_role(991) == "other"

    def test_reregister_replaces_role(self):
        register_thread("a", ident=992)
        register_thread("b", ident=992)
        assert current_role(992) == "b"
        unregister_thread(ident=992)

    def test_thread_role_overrides_and_restores(self):
        ident = threading.get_ident()
        register_thread("rpc.worker")
        try:
            with thread_role("wal.flush"):
                assert current_role(ident) == "wal.flush"
            assert current_role(ident) == "rpc.worker"
        finally:
            unregister_thread()

    def test_thread_role_on_unregistered_thread_leaves_no_residue(self):
        ident = threading.get_ident()
        unregister_thread()
        with thread_role("wal.flush"):
            assert current_role(ident) == "wal.flush"
        assert ident not in registered_threads()

    def test_thread_role_nests(self):
        ident = threading.get_ident()
        with thread_role("outer"):
            with thread_role("inner"):
                assert current_role(ident) == "inner"
            assert current_role(ident) == "outer"


class TestSampleOnce:
    def test_exact_folded_counts_with_roles(self):
        register_thread("rpc.worker", ident=1)
        register_thread("updates", ident=2)
        frames = {
            1: make_stack(("server.py", "serve"), ("rpc.py", "handle")),
            2: make_stack(("updates.py", "_run")),
            3: make_stack(("misc.py", "spin")),  # unregistered -> other
        }
        profiler = SamplingProfiler(hz=10, frames=lambda: frames)
        for _ in range(3):
            assert profiler.sample_once() == 3
        assert profiler.profile().stacks == {
            "rpc.worker;server:serve;rpc:handle": 3,
            "updates;updates:_run": 3,
            "other;misc:spin": 3,
        }
        assert profiler.profile().samples == 9
        assert profiler.profile().by_role() == {
            "rpc.worker": 3,
            "updates": 3,
            "other": 3,
        }

    def test_own_thread_and_none_frames_excluded(self):
        own = threading.get_ident()
        frames = {own: make_stack(("x.py", "me")), 5: None}
        profiler = SamplingProfiler(hz=10, frames=lambda: frames)
        assert profiler.sample_once() == 0
        assert not profiler.profile()

    def test_self_metering(self):
        registry = MetricsRegistry()
        frames = {7: make_stack(("a.py", "f"))}
        profiler = SamplingProfiler(
            hz=25,
            frames=lambda: frames,
            clock=fake_clock(step=0.001),
            metrics=registry,
        )
        profiler.sample_once()
        # One clock step per walk -> duty = 0.001 * 25.
        assert profiler.last_walk_seconds == pytest.approx(0.001)
        assert profiler._m_samples.value == 1
        assert profiler._m_duty.value == pytest.approx(0.025)

    def test_reset_clears_profile_and_runs(self):
        frames = {7: make_stack(("a.py", "f"))}
        profiler = SamplingProfiler(hz=10, frames=lambda: frames)
        profiler.sample_once()
        profiler.reset()
        assert not profiler.profile()
        assert profiler.thread_states() == []

    def test_window_delta_between_snapshots(self):
        frames = {7: make_stack(("a.py", "f"))}
        profiler = SamplingProfiler(hz=10, frames=lambda: frames)
        profiler.sample_once()
        before = profiler.profile()
        profiler.sample_once()
        profiler.sample_once()
        window = profiler.profile().delta(before)
        assert window.stacks == {"other;a:f": 2}

    def test_negative_hz_rejected(self):
        with pytest.raises(ValueError):
            SamplingProfiler(hz=-1)

    def test_start_requires_positive_hz(self):
        profiler = SamplingProfiler(hz=0)
        assert not profiler.enabled
        with pytest.raises(ValueError):
            profiler.start()

    def test_to_dict_shape(self):
        frames = {7: make_stack(("a.py", "f"))}
        profiler = SamplingProfiler(hz=10, frames=lambda: frames)
        profiler.sample_once()
        payload = profiler.to_dict()
        assert payload["enabled"] is True
        assert payload["hz"] == 10
        assert payload["samples"] == 1
        assert payload["roles"] == {"other": 1}
        assert payload["profile"]["stacks"] == {"other;a:f": 1}


class TestStuckDetection:
    def busy_frames(self, name="hot_loop"):
        return {11: make_stack(("server.py", "serve"), ("lrc.py", name))}

    def test_fires_after_min_samples_with_inflight(self):
        profiler = SamplingProfiler(
            hz=10, frames=self.busy_frames, inflight=lambda: 2.0
        )
        for _ in range(4):
            profiler.sample_once()
        assert profiler.detections() == []
        profiler.sample_once()
        (det,) = profiler.detections()
        assert det.kind == "stuck_thread"
        assert det.severity == "warning"
        assert det.details["top_frame"] == "lrc:hot_loop"
        assert det.details["consecutive"] == 5
        assert det.details["inflight"] == 2.0

    def test_critical_at_double_threshold(self):
        profiler = SamplingProfiler(
            hz=10, frames=self.busy_frames, inflight=lambda: 1.0
        )
        for _ in range(10):
            profiler.sample_once()
        (det,) = profiler.detections()
        assert det.severity == "critical"

    def test_idle_top_frame_never_fires(self):
        assert "recv" in IDLE_FRAME_NAMES
        frames = {11: make_stack(("transport.py", "recv"))}
        profiler = SamplingProfiler(
            hz=10, frames=lambda: frames, inflight=lambda: 5.0
        )
        for _ in range(20):
            profiler.sample_once()
        assert profiler.detections() == []
        (state,) = profiler.thread_states()
        assert state["idle"] is True
        assert state["consecutive"] == 20

    def test_zero_inflight_suppresses(self):
        profiler = SamplingProfiler(
            hz=10, frames=self.busy_frames, inflight=lambda: 0.0
        )
        for _ in range(20):
            profiler.sample_once()
        assert profiler.detections() == []

    def test_no_inflight_source_suppresses(self):
        profiler = SamplingProfiler(hz=10, frames=self.busy_frames)
        for _ in range(20):
            profiler.sample_once()
        assert profiler.detections() == []

    def test_changing_top_frame_resets_run(self):
        calls = {"n": 0}

        def frames():
            calls["n"] += 1
            name = "hot_a" if calls["n"] % 2 else "hot_b"
            return {11: make_stack(("lrc.py", name))}

        profiler = SamplingProfiler(
            hz=10, frames=frames, inflight=lambda: 1.0
        )
        for _ in range(20):
            profiler.sample_once()
        assert profiler.detections() == []
        (state,) = profiler.thread_states()
        assert state["consecutive"] == 1

    def test_exited_thread_drops_from_bookkeeping(self):
        gone = {"yes": False}

        def frames():
            if gone["yes"]:
                return {}
            return {11: make_stack(("lrc.py", "hot"))}

        profiler = SamplingProfiler(hz=10, frames=frames)
        profiler.sample_once()
        assert len(profiler.thread_states()) == 1
        gone["yes"] = True
        profiler.sample_once()
        assert profiler.thread_states() == []


class FakeTracer:
    def __init__(self, contexts):
        self.contexts = contexts

    def context_for_thread(self, ident):
        return self.contexts.get(ident)


class TestThreadDump:
    def test_dump_fields_roles_and_spans(self):
        register_thread("rpc.worker", ident=21)
        frames = {
            21: make_stack(
                ("server.py", "serve"), ("rpc.py", "handle"), ("lrc.py", "query")
            ),
            22: make_stack(("transport.py", "accept")),
        }
        profiler = SamplingProfiler(hz=10, frames=lambda: frames)
        profiler.sample_once()
        tracer = FakeTracer({21: ("trace-1", "span-9")})
        dump = profiler.thread_dump(tracer=tracer)
        by_ident = {entry["ident"]: entry for entry in dump}
        worker = by_ident[21]
        # Frames leaf-first in the dump (what the thread is doing *now*).
        assert worker["frames"][0] == "lrc:query"
        assert worker["role"] == "rpc.worker"
        assert worker["trace_id"] == "trace-1"
        assert worker["span_id"] == "span-9"
        assert worker["idle"] is False
        assert worker["consecutive_top"] == 1
        idle = by_ident[22]
        assert idle["idle"] is True
        assert idle["trace_id"] is None
        assert idle["role"] == "other"

    def test_dump_truncates_frames(self):
        frames = {31: make_stack(*[("m.py", f"f{i}") for i in range(10)])}
        profiler = SamplingProfiler(hz=10, frames=lambda: frames)
        dump = profiler.thread_dump(tracer=FakeTracer({}), top=3)
        (entry,) = [e for e in dump if e["ident"] == 31]
        assert entry["frames"] == ["m:f9", "m:f8", "m:f7"]


class TestBackgroundLoop:
    def test_real_thread_samples_real_frames(self):
        """Smoke: the daemon loop samples genuine interpreter frames."""
        stop = threading.Event()

        def busy():
            register_thread("busy.bee")
            try:
                while not stop.is_set():
                    sum(range(50))
            finally:
                unregister_thread()

        worker = threading.Thread(target=busy, daemon=True)
        worker.start()
        try:
            with SamplingProfiler(hz=200) as profiler:
                deadline = 200
                while profiler.profile().samples == 0 and deadline:
                    deadline -= 1
                    stop.wait(0.01)
            roles = profiler.profile().by_role()
            assert "busy.bee" in roles
        finally:
            stop.set()
            worker.join()
        # stop() is idempotent and the thread is gone.
        profiler.stop()
        assert profiler._thread is None
