"""Prometheus text exposition (format 0.0.4) conformance."""

from __future__ import annotations

import re

from repro.obs.metrics import (
    MetricsRegistry,
    escape_help_text,
    escape_label_value,
    flatten_metric_name,
    help_text,
)

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(_count|_sum)?(\{[^}]*\})? -?[0-9.e+-]+$"
)


def render(registry):
    return registry.render_text()


def sample_lines(text):
    return [l for l in text.splitlines() if l and not l.startswith("#")]


class TestHeaders:
    def test_help_and_type_once_per_metric_before_first_sample(self):
        registry = MetricsRegistry()
        registry.counter("rpc.requests", method="add").inc(1)
        registry.counter("rpc.requests", method="query").inc(2)
        text = render(registry)
        lines = text.splitlines()
        assert lines.count("# HELP rpc_requests " + help_text("rpc_requests")) == 1
        assert lines.count("# TYPE rpc_requests counter") == 1
        first_sample = next(
            i for i, l in enumerate(lines) if l.startswith("rpc_requests{")
        )
        assert lines.index("# TYPE rpc_requests counter") < first_sample
        assert lines.index("# HELP rpc_requests " + help_text("rpc_requests")) \
            < first_sample

    def test_types(self):
        registry = MetricsRegistry()
        registry.counter("rpc.requests").inc()
        registry.gauge("wal.queue_depth").set(1.0)
        registry.histogram("rpc.latency").observe(0.01)
        text = render(registry)
        assert "# TYPE rpc_requests counter" in text
        assert "# TYPE wal_queue_depth gauge" in text
        # Quantile-style exposition (pre-aggregated percentiles) is a
        # summary in the 0.0.4 taxonomy, not a histogram.
        assert "# TYPE rpc_latency summary" in text

    def test_unknown_metric_gets_fallback_help(self):
        registry = MetricsRegistry()
        registry.counter("made.up.metric").inc()
        assert "# HELP made_up_metric RLS metric made_up_metric" in \
            render(registry)

    def test_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("rpc.requests").inc()
        assert render(registry).endswith("\n")


class TestNames:
    def test_dots_and_dashes_flatten_to_underscores(self):
        assert flatten_metric_name("rpc.latency") == "rpc_latency"
        assert flatten_metric_name("a-b.c") == "a_b_c"

    def test_every_sample_line_is_legal(self):
        registry = MetricsRegistry()
        registry.counter("rpc.requests", method="add").inc(5)
        registry.gauge("wal.queue_depth", wal="main").set(2.5)
        registry.histogram("rpc.latency", method="add").observe(0.002)
        for line in sample_lines(render(registry)):
            assert _SAMPLE_RE.match(line), line


class TestLabelEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escape_help_text_leaves_quotes(self):
        assert escape_help_text('say "hi"\n') == 'say "hi"\\n'

    def test_rendered_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter(
            "rpc.errors", error='bad "lfn"\nname', path="C:\\tmp"
        ).inc()
        text = render(registry)
        assert 'error="bad \\"lfn\\"\\nname"' in text
        assert 'path="C:\\\\tmp"' in text
        # No raw newline may survive inside a sample line.
        for line in sample_lines(text):
            assert "\n" not in line

    def test_labels_sorted_and_quoted(self):
        registry = MetricsRegistry()
        registry.counter("rpc.requests", zeta="z", alpha="a").inc()
        assert 'rpc_requests{alpha="a",zeta="z"} 1' in render(registry)


class TestSummarySamples:
    def test_quantiles_count_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rpc.latency", method="add")
        for _ in range(100):
            hist.observe(0.010)
        text = render(registry)
        for q in ("0.5", "0.95", "0.99"):
            assert re.search(
                r'rpc_latency\{method="add",quantile="%s"\} [0-9.]+'
                % re.escape(q),
                text,
            ), text
        assert 'rpc_latency_count{method="add"} 100' in text
        assert re.search(r'rpc_latency_sum\{method="add"\} 1\.0*\b', text)

    def test_count_and_sum_lines_carry_no_quantile_label(self):
        registry = MetricsRegistry()
        registry.histogram("rpc.latency").observe(0.001)
        text = render(registry)
        count_line = next(
            l for l in text.splitlines() if l.startswith("rpc_latency_count")
        )
        assert "quantile" not in count_line


class TestValueRendering:
    def test_integers_render_without_decimal_point(self):
        registry = MetricsRegistry()
        registry.counter("rpc.requests").inc(42)
        registry.gauge("wal.queue_depth").set(3.0)
        text = render(registry)
        assert "rpc_requests 42" in text
        assert "wal_queue_depth 3" in text

    def test_fractions_render_plainly(self):
        registry = MetricsRegistry()
        registry.gauge("wal.queue_depth").set(2.5)
        assert "wal_queue_depth 2.5" in render(registry)
