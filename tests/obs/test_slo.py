"""SLO engine: SLIs, multi-window burn rates, budgets, the recorder."""

from __future__ import annotations

from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry, split_metric_key
from repro.obs.slo import (
    DEFAULT_LATENCY_THRESHOLDS,
    FAST_WINDOW,
    OPERATION_CLASSES,
    SLIRecorder,
    SLITracker,
    SLOW_WINDOW,
    SLOPolicy,
    classify_method,
    slow_observations,
)


class TestClassifyMethod:
    def test_classes_cover_table1_operations(self):
        assert classify_method("lrc_create_mapping") == "add"
        assert classify_method("lrc_add_mapping") == "add"
        assert classify_method("lrc_get_mappings") == "query"
        assert classify_method("rli_query") == "query"
        assert classify_method("lrc_bulk_query") == "bulk"
        assert classify_method("rli_bulk_query") == "bulk"
        assert classify_method("lrc_query_wildcard") == "wildcard"
        assert classify_method("lrc_attr_query") == "wildcard"

    def test_internal_traffic_is_unclassified(self):
        assert classify_method("admin_stats") is None
        assert classify_method("admin_slo") is None
        assert classify_method("mirror_incremental") is None
        assert classify_method("lrc_mirror_add") is None
        assert classify_method("rli_lrc_update") is None

    def test_unlisted_client_methods_classified_by_shape(self):
        assert classify_method("lrc_bulk_frobnicate") == "bulk"
        assert classify_method("lrc_new_wildcard_scan") == "wildcard"
        assert classify_method("lrc_totally_new") is None

    def test_every_class_has_a_latency_threshold(self):
        for cls in OPERATION_CLASSES:
            assert DEFAULT_LATENCY_THRESHOLDS[cls] > 0


class TestSlowObservations:
    def test_boundary_threshold_is_exact(self):
        # On a log-2 bucket boundary the count of strictly-slower
        # observations is exact; at-threshold requests are on time.
        threshold = BUCKET_BOUNDS[16]  # 65.536 ms
        registry = MetricsRegistry()
        hist = registry.histogram("x")
        for v in (threshold * 0.9, threshold, threshold * 1.1, 0.500):
            hist.observe(v)
        counts = registry.snapshot().histograms["x"].counts
        assert slow_observations(counts, threshold) == 2

    def test_mid_bucket_threshold_undercounts_conservatively(self):
        registry = MetricsRegistry()
        hist = registry.histogram("x")
        hist.observe(0.060)  # same bucket as the 50ms default threshold
        hist.observe(0.500)
        counts = registry.snapshot().histograms["x"].counts
        # 0.050 is mid-bucket: only buckets entirely above it are certain.
        assert slow_observations(counts, 0.050) == 1

    def test_overflow_bucket_counts(self):
        registry = MetricsRegistry()
        hist = registry.histogram("x")
        hist.observe(BUCKET_BOUNDS[-1] * 10)
        counts = registry.snapshot().histograms["x"].counts
        assert slow_observations(counts, 0.050) == 1


class TestSLITracker:
    def test_no_traffic_means_undefined_sli_and_zero_burn(self):
        tracker = SLITracker()
        assert tracker.availability(300.0, now=1000.0) is None
        assert tracker.latency_sli(300.0, now=1000.0) is None
        assert tracker.burn_rate(300.0, 1000.0, "availability") == 0.0
        assert tracker.alerts(now=1000.0) == []

    def test_availability_and_burn(self):
        tracker = SLITracker(SLOPolicy(availability_target=0.999))
        tracker.record(100.0, requests=1000, errors=10)
        assert tracker.availability(300.0, now=200.0) == 1.0 - 10 / 1000
        burn = tracker.burn_rate(300.0, 200.0, "availability")
        assert abs(burn - 10.0) < 1e-9  # 1% errors / 0.1% budget

    def test_window_cutoff_excludes_old_records(self):
        tracker = SLITracker()
        tracker.record(0.0, requests=100, errors=100)
        tracker.record(1000.0, requests=100, errors=0)
        # 5m window at t=1100 sees only the clean record.
        assert tracker.availability(300.0, now=1100.0) == 1.0
        # 1h window still sees the outage.
        assert tracker.availability(3600.0, now=1100.0) == 0.5

    def test_fast_alert_needs_both_windows(self):
        # Errors only in the last 5 minutes: short burn huge, 1h burn
        # diluted below 14.4 -> the fast page must NOT fire.
        tracker = SLITracker()
        for i in range(60):
            t = i * 60.0
            errors = 100 if t > 3300.0 else 0
            tracker.record(t, requests=1000, errors=errors)
        fast = [
            a for a in tracker.alerts(now=3600.0) if a["window"] == "fast"
        ]
        assert fast == []

    def test_sustained_burn_fires_fast_and_slow(self):
        tracker = SLITracker()
        for i in range(61):
            tracker.record(i * 60.0, requests=1000, errors=100)
        alerts = tracker.alerts(now=3600.0)
        windows = {a["window"] for a in alerts}
        assert "fast" in windows and "slow" in windows
        fast = next(a for a in alerts if a["window"] == "fast")
        assert fast["severity"] == "critical"
        assert fast["burn_short"] >= FAST_WINDOW.threshold
        assert fast["burn_long"] >= FAST_WINDOW.threshold
        slow = next(a for a in alerts if a["window"] == "slow")
        assert slow["severity"] == "warning"
        assert slow["burn_short"] >= SLOW_WINDOW.threshold

    def test_latency_sli_separate_from_availability(self):
        tracker = SLITracker(SLOPolicy(latency_target=0.99))
        tracker.record(10.0, requests=100, errors=0, slow=50)
        assert tracker.availability(300.0, now=20.0) == 1.0
        assert tracker.latency_sli(300.0, now=20.0) == 0.5
        assert abs(tracker.burn_rate(300.0, 20.0, "latency") - 50.0) < 1e-9

    def test_budget_accounting(self):
        tracker = SLITracker(
            SLOPolicy(availability_target=0.999, latency_target=0.99)
        )
        tracker.record(10.0, requests=10_000, errors=5, slow=50)
        budget = tracker.budget(now=20.0)
        # 5 errors of 10 allowed; 50 slow of 100 allowed.
        assert abs(budget["availability_budget_remaining"] - 0.5) < 1e-9
        assert abs(budget["latency_budget_remaining"] - 0.5) < 1e-9
        exhausted = SLITracker(SLOPolicy(availability_target=0.999))
        exhausted.record(10.0, requests=1000, errors=500)
        assert exhausted.budget(20.0)["availability_budget_remaining"] == 0.0

    def test_horizon_trims_records(self):
        tracker = SLITracker()
        horizon = tracker.policy.horizon()
        tracker.record(0.0, requests=1, errors=0)
        tracker.record(horizon + 100.0, requests=1, errors=0)
        assert len(tracker._records) == 1

    def test_to_dict_window_keys(self):
        tracker = SLITracker()
        tracker.record(10.0, requests=10, errors=1)
        d = tracker.to_dict(now=20.0)
        assert set(d["windows"]) == {
            "fast_short", "fast_long", "slow_short", "slow_long"
        }
        assert d["windows"]["fast_short"]["requests"] == 10
        assert "budget" in d and "alerts" in d


def _gauges_named(registry, name):
    out = {}
    for key, value in registry.snapshot().gauges.items():
        base, labels = split_metric_key(key)
        if base == name:
            out[tuple(sorted(labels.items()))] = value
    return out


class TestSLIRecorder:
    def _clock(self, start=0.0):
        state = {"now": start}

        def clock():
            return state["now"]

        return state, clock

    def test_tick_classifies_and_records(self):
        state, clock = self._clock()
        registry = MetricsRegistry()
        recorder = SLIRecorder(
            registry, shard="s0", endpoint="s0", clock=clock
        )
        recorder.tick()  # priming
        registry.counter("rpc.requests", method="lrc_get_mappings").inc(95)
        registry.counter("rpc.errors", method="lrc_get_mappings").inc(5)
        hist = registry.histogram("rpc.latency", method="lrc_get_mappings")
        for _ in range(90):
            hist.observe(0.001)
        for _ in range(10):
            hist.observe(0.200)  # above the 50ms query threshold
        # Internal traffic must not pollute any class.
        registry.counter("rpc.requests", method="admin_stats").inc(50)
        state["now"] = 60.0
        recorder.tick()
        tracker = recorder.trackers["query"]
        # Denominator is successes + errors.
        assert tracker._records[-1] == (60.0, 100, 5, 10)
        for cls in ("add", "bulk", "wildcard"):
            assert recorder.trackers[cls].availability(300.0, 60.0) is None
        assert recorder.ticks == 1

    def test_tick_exports_gauges(self):
        state, clock = self._clock()
        registry = MetricsRegistry()
        recorder = SLIRecorder(registry, endpoint="e0", clock=clock)
        recorder.tick()
        registry.counter("rpc.requests", method="lrc_create_mapping").inc(90)
        registry.counter("rpc.errors", method="lrc_create_mapping").inc(10)
        state["now"] = 60.0
        recorder.tick()
        avail = _gauges_named(registry, "slo.availability")
        key = (("class", "add"), ("endpoint", "e0"))
        assert abs(avail[key] - 0.9) < 1e-9
        burns = _gauges_named(registry, "slo.burn_rate")
        fast_key = (("class", "add"), ("endpoint", "e0"), ("window", "fast"))
        assert burns[fast_key] > 14.4
        budgets = _gauges_named(registry, "slo.budget_remaining")
        assert budgets[key] == 0.0  # 10% errors vs 0.1% budget
        # Self-metering rides the same registry.
        snapshot = registry.snapshot()
        assert snapshot.counters["obs.slo.ticks"] == 2

    def test_alerts_and_to_dict(self):
        state, clock = self._clock()
        registry = MetricsRegistry()
        recorder = SLIRecorder(registry, shard="s1", clock=clock)
        recorder.tick()
        for i in range(1, 62):
            registry.counter(
                "rpc.requests", method="lrc_get_mappings"
            ).inc(90)
            registry.counter("rpc.errors", method="lrc_get_mappings").inc(10)
            state["now"] = i * 60.0
            recorder.tick()
        alerts = recorder.alerts()
        assert any(
            a["window"] == "fast" and a["class"] == "query" for a in alerts
        )
        assert all(a["shard"] == "s1" for a in alerts)
        payload = recorder.to_dict()
        assert payload["enabled"] is True
        assert set(payload["classes"]) == set(OPERATION_CLASSES)
        assert payload["alerts"] == alerts

    def test_background_thread_lifecycle(self):
        registry = MetricsRegistry()
        recorder = SLIRecorder(registry)
        recorder.start(interval=0.01)
        try:
            import time as _time

            deadline = _time.time() + 2.0
            while recorder.ticks < 2 and _time.time() < deadline:
                _time.sleep(0.01)
            assert recorder.ticks >= 2
        finally:
            recorder.stop()
        assert recorder._thread is None
