"""MetricsSnapshot merge/delta edge cases the collector depends on."""

from __future__ import annotations

from repro.obs.metrics import (
    NUM_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)


def hist_of(*values):
    registry = MetricsRegistry()
    h = registry.histogram("h")
    for v in values:
        h.observe(v)
    return h.snapshot()


EMPTY_HIST = HistogramSnapshot((0,) * (NUM_BUCKETS + 1), 0, 0.0, 0.0, 0.0)


class TestDeltaMismatchedSets:
    def test_new_metrics_pass_through(self):
        later = MetricsSnapshot(
            counters={"a": 5, "b": 3},
            gauges={"g": 2.0},
            histograms={"h": hist_of(0.01)},
        )
        earlier = MetricsSnapshot(counters={"a": 2})
        delta = later.delta(earlier)
        assert delta.counters == {"a": 3, "b": 3}
        assert delta.gauges == {"g": 2.0}
        assert delta.histograms["h"].count == 1

    def test_metrics_absent_from_later_disappear(self):
        """A restarted node that lost an instrument must not leave a
        phantom key in the delta."""
        later = MetricsSnapshot(counters={"a": 1})
        earlier = MetricsSnapshot(counters={"a": 0, "gone": 99})
        assert later.delta(earlier).counters == {"a": 1}

    def test_counter_reset_clamps_to_zero(self):
        later = MetricsSnapshot(counters={"a": 5})
        earlier = MetricsSnapshot(counters={"a": 100})
        assert later.delta(earlier).counters == {"a": 0}

    def test_histogram_reset_clamps_bucketwise(self):
        later = hist_of(0.01)
        earlier = hist_of(0.01, 0.01, 10.0)
        delta = later.delta(earlier)
        assert delta.count == 0
        assert delta.sum == 0.0
        assert all(c >= 0 for c in delta.counts)

    def test_gauges_keep_current_values(self):
        later = MetricsSnapshot(gauges={"depth": 3.0})
        earlier = MetricsSnapshot(gauges={"depth": 100.0})
        assert later.delta(earlier).gauges == {"depth": 3.0}


class TestMergeMismatchedSets:
    def test_union_semantics(self):
        a = MetricsSnapshot(
            counters={"x": 1}, gauges={"g": 2.0}, histograms={"h": hist_of(0.01)}
        )
        b = MetricsSnapshot(
            counters={"x": 2, "y": 5},
            gauges={"g": 3.0},
            histograms={"h": hist_of(0.02), "k": hist_of(1.0)},
        )
        merged = a.merge(b)
        assert merged.counters == {"x": 3, "y": 5}
        assert merged.gauges == {"g": 5.0}
        assert merged.histograms["h"].count == 2
        assert merged.histograms["k"].count == 1

    def test_merge_with_empty_is_identity(self):
        a = MetricsSnapshot(counters={"x": 7}, histograms={"h": hist_of(0.5)})
        for merged in (a.merge(MetricsSnapshot()), MetricsSnapshot().merge(a)):
            assert merged.counters == {"x": 7}
            assert merged.histograms["h"].count == 1

    def test_merge_min_ignores_empty_side(self):
        populated = hist_of(0.5)
        assert populated.merge(EMPTY_HIST).min == 0.5
        assert EMPTY_HIST.merge(populated).min == 0.5

    def test_merge_snapshots_folds_many(self):
        parts = [MetricsSnapshot(counters={"x": i}) for i in (1, 2, 3)]
        assert merge_snapshots(parts).counters == {"x": 6}
        assert merge_snapshots([]).counters == {}


class TestEmptyHistogramPercentiles:
    def test_all_percentiles_zero(self):
        for p in (0, 50, 95, 99, 100):
            assert EMPTY_HIST.percentile(p) == 0.0

    def test_delta_to_empty_has_zero_percentiles(self):
        snapshot = hist_of(0.01, 0.02)
        delta = snapshot.delta(snapshot)
        assert delta.count == 0
        assert delta.percentile(95) == 0.0

    def test_single_observation_percentiles_bounded(self):
        h = hist_of(0.010)
        assert h.percentile(0) == 0.010
        assert h.percentile(100) == 0.010
        assert 0.0 < h.percentile(95) <= 0.020


class TestWireRoundTrip:
    def test_to_from_dict_preserves_delta_inputs(self):
        registry = MetricsRegistry()
        registry.counter("c", method="m").inc(4)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.3)
        snapshot = registry.snapshot()
        restored = MetricsSnapshot.from_dict(snapshot.to_dict())
        assert restored.counters == snapshot.counters
        assert restored.gauges == snapshot.gauges
        assert restored.histograms["h"] == snapshot.histograms["h"]
        assert restored.delta(snapshot).counters == {"c{method=m}": 0}
