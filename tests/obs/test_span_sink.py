"""Tail-based span retention: the interesting buffer survives floods."""

from __future__ import annotations

import pytest

from repro.obs.tracing import (
    DEFAULT_LATENCY_THRESHOLD,
    Span,
    SpanSink,
    Tracer,
)


def make_span(i, duration=0.001, error=None):
    return Span(
        name=f"op-{i}",
        trace_id=f"t{i}",
        span_id=f"s{i}",
        duration=duration,
        error=error,
    )


class TestInterestingReason:
    def test_error_wins(self):
        sink = SpanSink()
        assert sink.interesting_reason(make_span(0, error="Timeout")) == "error"

    def test_slow(self):
        sink = SpanSink(latency_threshold=0.050)
        assert sink.interesting_reason(make_span(0, duration=0.051)) == "slow"
        assert sink.interesting_reason(make_span(0, duration=0.049)) is None

    def test_default_threshold(self):
        assert SpanSink().latency_threshold == DEFAULT_LATENCY_THRESHOLD


class TestOverflow:
    def test_fast_flood_cannot_evict_retained_spans(self):
        """Acceptance criterion: error/slow spans survive buffer wrap.

        Retain a handful of interesting spans, then offer far more
        fast-and-fine spans than either ring holds; the interesting buffer
        must still contain every error and slow span.
        """
        sink = SpanSink(capacity=64, recent_capacity=16)
        error_span = make_span(0, error="ConnectionError")
        slow_span = make_span(1, duration=0.200)
        sink.offer(error_span)
        sink.offer(slow_span)
        for i in range(2, 2 + 10 * sink.capacity):
            sink.offer(make_span(i, duration=0.0001))
        retained = {s.span_id for s in sink.interesting()}
        assert error_span.span_id in retained
        assert slow_span.span_id in retained
        # The recent ring wrapped many times over...
        assert len(sink.recent()) == sink.recent_capacity
        # ...but retention bookkeeping saw everything.
        stats = sink.stats()
        assert stats["offered"] == 2 + 10 * sink.capacity
        assert stats["retained"] == 2

    def test_interesting_ring_evicts_oldest_interesting(self):
        sink = SpanSink(capacity=3)
        for i in range(5):
            sink.offer(make_span(i, error="E"))
        assert [s.span_id for s in sink.interesting()] == ["s2", "s3", "s4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanSink(capacity=0)


class TestPayload:
    def test_to_dict_limits_newest_last(self):
        sink = SpanSink()
        for i in range(10):
            sink.offer(make_span(i, error="E"))
        payload = sink.to_dict(limit=3)
        assert [s["span_id"] for s in payload["spans"]] == ["s7", "s8", "s9"]
        assert payload["stats"]["retained"] == 10

    def test_clear(self):
        sink = SpanSink()
        sink.offer(make_span(0, error="E"))
        sink.clear()
        assert sink.interesting() == []
        assert sink.recent() == []


class TestOrphanRetention:
    def test_retention_reason_recorded_on_offer(self):
        sink = SpanSink(latency_threshold=0.050)
        sink.offer(make_span(0, error="Timeout"))
        sink.offer(make_span(1, duration=0.200))
        sink.offer(make_span(2, duration=0.0001))
        assert sink.retention_reason("s0") == "error"
        assert sink.retention_reason("s1") == "slow"
        assert sink.retention_reason("s2") is None

    def test_mark_orphaned_appends_suffix_once(self):
        sink = SpanSink()
        span = make_span(0, error="E")
        sink.offer(span)
        sink.mark_orphaned(span.trace_id)
        assert sink.retention_reason(span.span_id) == "error,orphan"
        sink.mark_orphaned(span.trace_id)  # idempotent
        assert sink.retention_reason(span.span_id) == "error,orphan"

    def test_mark_orphaned_only_touches_that_trace(self):
        sink = SpanSink()
        sink.offer(make_span(0, error="E"))
        sink.offer(make_span(1, error="E"))
        sink.mark_orphaned("t0")
        assert sink.retention_reason("s0") == "error,orphan"
        assert sink.retention_reason("s1") == "error"

    def test_trace_fetches_across_both_rings(self):
        sink = SpanSink(latency_threshold=0.050)
        slow = Span(
            name="slow", trace_id="tx", span_id="a", duration=0.200
        )
        fast = Span(
            name="fast", trace_id="tx", span_id="b", duration=0.0001
        )
        other = make_span(9, duration=0.200)
        for s in (slow, fast, other):
            sink.offer(s)
        got = {s.span_id for s in sink.trace("tx")}
        assert got == {"a", "b"}

    def test_tracer_eviction_marks_sink_orphans(self):
        """Acceptance criterion: children retained for the tail survive
        trace eviction, flagged ``,orphan`` and fetchable by trace id."""
        sink = SpanSink(latency_threshold=0.0)  # retain everything
        tracer = Tracer(sink=sink, max_traces=2)
        with tracer.span("first-root") as h:
            first_tid = h.trace_id
            with tracer.span("first-child"):
                pass
        # Two more traces roll `first_tid` out of the tracer store.
        for _ in range(2):
            with tracer.span("filler"):
                pass
        assert first_tid not in tracer.trace_ids()
        fragments = sink.trace(first_tid)
        assert {s.name for s in fragments} == {"first-root", "first-child"}
        for s in fragments:
            assert sink.retention_reason(s.span_id).endswith(",orphan")
        # The tracer still resolves the orphaned fragments by trace id...
        assert {s.name for s in tracer.fragments(first_tid)} == {
            "first-root", "first-child"
        }
        # ...and by span id, so slowlog output stays pasteable.
        span_id = fragments[0].span_id
        assert tracer.resolve_trace(span_id) == first_tid

    def test_fragments_deduplicate_store_and_sink(self):
        sink = SpanSink(latency_threshold=0.0)
        tracer = Tracer(sink=sink)
        with tracer.span("live") as h:
            tid = h.trace_id
        # The span sits in both the trace store and the sink.
        assert len(tracer.fragments(tid)) == 1


class TestTracerIntegration:
    def test_tracer_offers_finished_spans_to_sink(self):
        sink = SpanSink(latency_threshold=0.0)  # everything is "slow"
        tracer = Tracer(sink=sink)
        with tracer.span("work"):
            pass
        assert sink.offered == 1
        assert [s.name for s in sink.interesting()] == ["work"]

    def test_error_spans_are_retained_fast_ones_not(self):
        sink = SpanSink(latency_threshold=10.0)
        tracer = Tracer(sink=sink)
        with tracer.span("fine"):
            pass
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        names = [s.name for s in sink.interesting()]
        assert names == ["broken"]
        assert sink.interesting()[0].error == "RuntimeError"
