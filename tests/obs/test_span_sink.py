"""Tail-based span retention: the interesting buffer survives floods."""

from __future__ import annotations

import pytest

from repro.obs.tracing import (
    DEFAULT_LATENCY_THRESHOLD,
    Span,
    SpanSink,
    Tracer,
)


def make_span(i, duration=0.001, error=None):
    return Span(
        name=f"op-{i}",
        trace_id=f"t{i}",
        span_id=f"s{i}",
        duration=duration,
        error=error,
    )


class TestInterestingReason:
    def test_error_wins(self):
        sink = SpanSink()
        assert sink.interesting_reason(make_span(0, error="Timeout")) == "error"

    def test_slow(self):
        sink = SpanSink(latency_threshold=0.050)
        assert sink.interesting_reason(make_span(0, duration=0.051)) == "slow"
        assert sink.interesting_reason(make_span(0, duration=0.049)) is None

    def test_default_threshold(self):
        assert SpanSink().latency_threshold == DEFAULT_LATENCY_THRESHOLD


class TestOverflow:
    def test_fast_flood_cannot_evict_retained_spans(self):
        """Acceptance criterion: error/slow spans survive buffer wrap.

        Retain a handful of interesting spans, then offer far more
        fast-and-fine spans than either ring holds; the interesting buffer
        must still contain every error and slow span.
        """
        sink = SpanSink(capacity=64, recent_capacity=16)
        error_span = make_span(0, error="ConnectionError")
        slow_span = make_span(1, duration=0.200)
        sink.offer(error_span)
        sink.offer(slow_span)
        for i in range(2, 2 + 10 * sink.capacity):
            sink.offer(make_span(i, duration=0.0001))
        retained = {s.span_id for s in sink.interesting()}
        assert error_span.span_id in retained
        assert slow_span.span_id in retained
        # The recent ring wrapped many times over...
        assert len(sink.recent()) == sink.recent_capacity
        # ...but retention bookkeeping saw everything.
        stats = sink.stats()
        assert stats["offered"] == 2 + 10 * sink.capacity
        assert stats["retained"] == 2

    def test_interesting_ring_evicts_oldest_interesting(self):
        sink = SpanSink(capacity=3)
        for i in range(5):
            sink.offer(make_span(i, error="E"))
        assert [s.span_id for s in sink.interesting()] == ["s2", "s3", "s4"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanSink(capacity=0)


class TestPayload:
    def test_to_dict_limits_newest_last(self):
        sink = SpanSink()
        for i in range(10):
            sink.offer(make_span(i, error="E"))
        payload = sink.to_dict(limit=3)
        assert [s["span_id"] for s in payload["spans"]] == ["s7", "s8", "s9"]
        assert payload["stats"]["retained"] == 10

    def test_clear(self):
        sink = SpanSink()
        sink.offer(make_span(0, error="E"))
        sink.clear()
        assert sink.interesting() == []
        assert sink.recent() == []


class TestTracerIntegration:
    def test_tracer_offers_finished_spans_to_sink(self):
        sink = SpanSink(latency_threshold=0.0)  # everything is "slow"
        tracer = Tracer(sink=sink)
        with tracer.span("work"):
            pass
        assert sink.offered == 1
        assert [s.name for s in sink.interesting()] == ["work"]

    def test_error_spans_are_retained_fast_ones_not(self):
        sink = SpanSink(latency_threshold=10.0)
        tracer = Tracer(sink=sink)
        with tracer.span("fine"):
            pass
        with pytest.raises(RuntimeError):
            with tracer.span("broken"):
                raise RuntimeError("boom")
        names = [s.name for s in sink.interesting()]
        assert names == ["broken"]
        assert sink.interesting()[0].error == "RuntimeError"
