"""Time-series store and snapshot-delta scraper."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.obs.timeseries import (
    OPS_RATE_KEY,
    ScrapeResult,
    Scraper,
    SeriesStore,
    TimeSeries,
    merge_points,
    rate_key,
    summarize,
)


class TestTimeSeries:
    def test_append_and_read(self):
        series = TimeSeries(capacity=10)
        for i in range(5):
            series.append(float(i), float(i * 2))
        assert series.points() == [(float(i), float(i * 2)) for i in range(5)]
        assert series.values() == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert series.times() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert series.latest() == (4.0, 8.0)
        assert len(series) == 5

    def test_ring_buffer_evicts_oldest(self):
        series = TimeSeries(capacity=3)
        for i in range(10):
            series.append(float(i), float(i))
        assert len(series) == 3
        assert series.times() == [7.0, 8.0, 9.0]

    def test_window(self):
        series = TimeSeries()
        for i in range(10):
            series.append(float(i), float(i))
        assert series.window(since=7.0) == [(7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]

    def test_empty(self):
        series = TimeSeries()
        assert series.latest() is None
        assert not series
        assert summarize(series) == {"count": 0}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TimeSeries(capacity=0)


class TestSeriesStore:
    def test_record_creates_series(self):
        store = SeriesStore()
        store.record("a", 1.0, 10.0)
        store.record("a", 2.0, 20.0)
        store.record("b", 1.0, 5.0)
        assert store.keys() == ["a", "b"]
        assert store.latest("a") == 20.0
        assert store.latest("missing") is None

    def test_to_dict_is_artifact_shaped(self):
        store = SeriesStore()
        store.record("x", 0.0, 1.0)
        store.record("x", 1.0, 2.0)
        assert store.to_dict() == {"x": [[0.0, 1.0], [1.0, 2.0]]}

    def test_capacity_applies_to_new_series(self):
        store = SeriesStore(capacity=2)
        for i in range(5):
            store.record("k", float(i), float(i))
        assert store.series("k").times() == [3.0, 4.0]


class TestScraper:
    def test_priming_scrape_returns_none(self):
        registry = MetricsRegistry()
        scraper = Scraper(registry.snapshot)
        assert scraper.scrape_once(now=0.0) is None
        assert scraper.last_snapshot is not None

    def test_counter_rates(self):
        registry = MetricsRegistry()
        counter = registry.counter("rpc.requests", method="add")
        scraper = Scraper(registry.snapshot)
        scraper.scrape_once(now=0.0)
        counter.inc(40)
        result = scraper.scrape_once(now=2.0)
        assert isinstance(result, ScrapeResult)
        assert result.interval == 2.0
        key = rate_key("rpc.requests", method="add")
        assert scraper.store.latest(key) == 20.0
        assert result.ops_rate() == 20.0
        assert scraper.store.latest(OPS_RATE_KEY) == 20.0

    def test_ops_rate_sums_all_methods(self):
        registry = MetricsRegistry()
        a = registry.counter("rpc.requests", method="a")
        b = registry.counter("rpc.requests", method="b")
        other = registry.counter("wal.records_appended")
        scraper = Scraper(registry.snapshot)
        scraper.scrape_once(now=0.0)
        a.inc(3)
        b.inc(7)
        other.inc(100)
        result = scraper.scrape_once(now=1.0)
        assert result.ops_rate() == 10.0

    def test_gauges_recorded_verbatim(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("wal.queue_depth")
        scraper = Scraper(registry.snapshot)
        scraper.scrape_once(now=0.0)
        gauge.set(17.0)
        scraper.scrape_once(now=1.0)
        assert scraper.store.latest("wal.queue_depth") == 17.0

    def test_histogram_p95_and_rate(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rpc.latency", method="q")
        scraper = Scraper(registry.snapshot)
        scraper.scrape_once(now=0.0)
        for _ in range(10):
            hist.observe(0.010)
        result = scraper.scrape_once(now=2.0)
        p95 = scraper.store.latest("rpc.latency{method=q}:p95")
        assert p95 is not None and 0.004 < p95 < 0.020
        assert scraper.store.latest("rpc.latency{method=q}:rate") == 5.0
        assert result is not None

    def test_non_advancing_clock_returns_none(self):
        registry = MetricsRegistry()
        scraper = Scraper(registry.snapshot)
        scraper.scrape_once(now=5.0)
        assert scraper.scrape_once(now=5.0) is None
        assert scraper.scrape_once(now=4.0) is None

    def test_counter_reset_clamps_to_zero_rate(self):
        """A restarted node must not emit negative rates."""
        snapshots = [
            MetricsSnapshot(counters={"rpc.requests": 100}),
            MetricsSnapshot(counters={"rpc.requests": 5}),  # reset
        ]
        scraper = Scraper(lambda: snapshots.pop(0))
        scraper.scrape_once(now=0.0)
        result = scraper.scrape_once(now=1.0)
        assert result.delta.counters["rpc.requests"] == 0
        assert result.ops_rate() == 0.0

    def test_on_scrape_callback(self):
        registry = MetricsRegistry()
        seen = []
        scraper = Scraper(registry.snapshot, on_scrape=seen.append)
        scraper.scrape_once(now=0.0)
        scraper.scrape_once(now=1.0)
        assert len(seen) == 1 and seen[0].t == 1.0

    def test_background_thread(self):
        registry = MetricsRegistry()
        counter = registry.counter("rpc.requests")
        with Scraper(registry.snapshot, interval=0.01) as scraper:
            counter.inc(5)
            import time as _time

            deadline = _time.monotonic() + 2.0
            while scraper.scrapes < 3 and _time.monotonic() < deadline:
                _time.sleep(0.005)
        assert scraper.scrapes >= 3
        assert scraper.store.get(OPS_RATE_KEY) is not None

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Scraper(MetricsRegistry().snapshot, interval=0.0)


def test_merge_points_orders_by_time():
    a = TimeSeries()
    b = TimeSeries()
    a.append(0.0, 1.0)
    a.append(2.0, 3.0)
    b.append(1.0, 2.0)
    assert merge_points([a, b]) == [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]


def test_summarize():
    series = TimeSeries()
    for v in (1.0, 3.0, 2.0):
        series.append(v, v)
    summary = summarize(series)
    assert summary == {"count": 3, "min": 1.0, "max": 3.0, "mean": 2.0, "last": 2.0}
