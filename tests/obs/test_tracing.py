"""Tracer unit tests: nesting, propagation, bounded retention."""

from __future__ import annotations

import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    NULL_SPAN,
    Tracer,
    format_tree,
    walk_tree,
)


@pytest.fixture(autouse=True)
def no_global_tracer():
    """Each test starts with no process-wide tracer installed."""
    tracing.install_tracer(None)
    yield
    tracing.install_tracer(None)


class TestSpanNesting:
    def test_child_inherits_trace_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
        spans = tracer.spans(outer.trace_id)
        by_name = {s.name: s for s in spans}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        tree = tracer.span_tree(root.trace_id)
        assert len(tree) == 1
        children = [n["span"].name for n in tree[0]["children"]]
        assert children == ["a", "b"]

    def test_duration_and_tags_recorded(self):
        tracer = Tracer()
        with tracer.span("op", method="add") as handle:
            handle.set_tag("rows", 3)
        (span,) = tracer.find_spans("op")
        assert span.duration >= 0.0
        assert span.tags == {"method": "add", "rows": 3}

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (span,) = tracer.find_spans("bad")
        assert span.error == "ValueError"

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("first") as a:
            pass
        with tracer.span("second") as b:
            pass
        assert a.trace_id != b.trace_id


class TestExplicitParent:
    def test_wire_context_adopted(self):
        """A span with explicit (trace_id, span_id) joins that trace."""
        tracer = Tracer()
        with tracer.span("client") as client:
            ctx = (client.trace_id, client.span_id)
        with tracer.span("server", parent=ctx):
            pass
        tree = tracer.span_tree(client.trace_id)
        assert len(tree) == 1
        assert tree[0]["span"].name == "client"
        assert tree[0]["children"][0]["span"].name == "server"

    def test_empty_trace_id_falls_back_to_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child", parent=("", "")):
                pass
        (child,) = tracer.find_spans("child")
        assert child.trace_id == root.trace_id

    def test_context_helper(self):
        tracer = Tracer()
        assert tracer.context() is None
        with tracer.span("outer") as outer:
            assert tracer.context() == (outer.trace_id, outer.span_id)
        assert tracer.context() is None


class TestThreadIsolation:
    def test_stacks_are_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            # No inherited parent: the main thread's open span is invisible.
            with tracer.span("worker") as handle:
                seen["trace"] = handle.trace_id

        with tracer.span("main") as main:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["trace"] != main.trace_id


class TestRetention:
    def test_oldest_traces_evicted(self):
        tracer = Tracer(max_traces=3)
        ids = []
        for i in range(5):
            with tracer.span(f"op{i}") as handle:
                ids.append(handle.trace_id)
        retained = tracer.trace_ids()
        assert len(retained) == 3
        assert retained == ids[2:]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.trace_ids() == []


class TestModuleLevelInstall:
    def test_no_tracer_fast_path(self):
        assert tracing.active() is False
        assert tracing.span("anything") is NULL_SPAN
        assert tracing.context() is None
        # NULL_SPAN is a usable no-op context manager.
        with tracing.span("anything") as handle:
            handle.set_tag("k", "v")

    def test_installed_tracer_records(self):
        tracer = Tracer()
        tracing.install_tracer(tracer)
        assert tracing.active() is True
        with tracing.span("op"):
            pass
        assert len(tracer.find_spans("op")) == 1
        tracing.install_tracer(None)
        assert tracing.span("op") is NULL_SPAN


class TestTreeHelpers:
    def _sample_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child", method="add"):
                with tracer.span("grandchild"):
                    pass
        return tracer.span_tree(root.trace_id)

    def test_walk_tree_depths(self):
        walked = [(depth, s.name) for depth, s in walk_tree(self._sample_tree())]
        assert walked == [(0, "root"), (1, "child"), (2, "grandchild")]

    def test_format_tree_indents_and_tags(self):
        text = format_tree(self._sample_tree())
        lines = text.splitlines()
        assert lines[0].startswith("root ")
        assert lines[1].startswith("  child ")
        assert "method=add" in lines[1]
        assert lines[2].startswith("    grandchild ")
