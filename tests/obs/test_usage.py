"""Per-principal usage accounting: sketches, accountant, cardinality."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.usage import (
    ANONYMOUS_PRINCIPAL,
    COST_FIELDS,
    OVERFLOW_PRINCIPAL,
    SpaceSavingSketch,
    UsageAccountant,
    UsageSnapshot,
    lfn_prefix,
    merge_usage_dicts,
)


class TestLfnPrefix:
    def test_path_names_keep_two_segments(self):
        assert lfn_prefix("/cms/run7/f001") == "/cms/run7"
        assert lfn_prefix("/cms/run7") == "/cms/run7"
        assert lfn_prefix("exp/raw/a/b") == "exp/raw"

    def test_flat_serial_names_collapse(self):
        assert lfn_prefix("lfn-000123") == "lfn-"
        assert lfn_prefix("lfn-000999") == "lfn-"
        assert lfn_prefix("file42") == "file"

    def test_degenerate_names(self):
        assert lfn_prefix("/") == "/"
        assert lfn_prefix("12345") == "12345"  # all digits: keep as-is
        assert lfn_prefix("plain") == "plain"


class TestSpaceSavingSketch:
    def test_exact_under_capacity(self):
        sketch = SpaceSavingSketch(capacity=8)
        for key, n in (("a", 5), ("b", 3), ("c", 1)):
            for _ in range(n):
                sketch.offer(key)
        assert sketch.top() == [("a", 5, 0), ("b", 3, 0), ("c", 1, 0)]
        assert sketch.count("a") == 5
        assert sketch.count("missing") == 0
        assert sketch.offered == 9

    def test_eviction_inherits_min_count_as_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        for _ in range(10):
            sketch.offer("hot")
        sketch.offer("warm")
        sketch.offer("new")  # evicts "warm" (count 1), inherits its count
        assert len(sketch) == 2
        rows = dict((k, (c, e)) for k, c, e in sketch.top())
        assert rows["hot"] == (10, 0)
        assert rows["new"] == (2, 1)  # count 1+1, error = evicted floor

    def test_heavy_hitter_guaranteed_present(self):
        # Any key with true count > N/capacity must survive.
        sketch = SpaceSavingSketch(capacity=4)
        for i in range(60):
            sketch.offer("heavy")  # 60 of 120 offers
            sketch.offer(f"noise-{i}")  # 60 distinct singletons
        assert sketch.count("heavy") >= 60
        top_keys = [k for k, _, _ in sketch.top(1)]
        assert top_keys == ["heavy"]

    def test_counts_are_upper_bounds_within_error(self):
        sketch = SpaceSavingSketch(capacity=4)
        truth: dict[str, int] = {}
        for i in range(200):
            key = f"k{i % 9}"
            truth[key] = truth.get(key, 0) + 1
            sketch.offer(key)
        for key, count, error in sketch.top():
            true = truth.get(key, 0)
            assert count >= true  # never undercounts
            assert count - error <= true  # overshoot bounded by error
            assert error <= sketch.offered / sketch.capacity

    def test_merge_sums_shared_keys_and_trims(self):
        a, b = SpaceSavingSketch(3), SpaceSavingSketch(3)
        for _ in range(5):
            a.offer("x")
        for _ in range(3):
            b.offer("x")
            b.offer("y")
        merged = a.merge(b)
        assert merged.count("x") == 8
        assert merged.count("y") == 3
        assert merged.offered == a.offered + b.offered
        assert len(merged) <= 3

    def test_round_trip(self):
        sketch = SpaceSavingSketch(capacity=2)
        for key in ("a", "a", "b", "c"):
            sketch.offer(key)
        clone = SpaceSavingSketch.from_dict(sketch.to_dict())
        assert clone.top() == sketch.top()
        assert clone.offered == sketch.offered
        assert clone.capacity == sketch.capacity

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(capacity=0)


class TestUsageAccountant:
    def test_account_accumulates_cost_vectors(self):
        acct = UsageAccountant()
        acct.account(
            "cms",
            "add",
            wall_time=0.25,
            queue_wait=0.05,
            rows_examined=7,
            wal_bytes=120,
            lfn="/cms/data/f1",
        )
        acct.account("cms", "add", wall_time=0.75, error=True)
        acct.account("cms", "query", wall_time=0.5, lfn="/cms/data/f2")
        payload = acct.to_dict()
        add = payload["principals"]["cms"]["add"]
        assert add["requests"] == 2
        assert add["errors"] == 1
        assert add["wall_time"] == pytest.approx(1.0)
        assert add["queue_wait"] == pytest.approx(0.05)
        assert add["rows_examined"] == 7
        assert add["wal_bytes"] == 120
        assert payload["principals"]["cms"]["query"]["requests"] == 1
        assert payload["fields"] == list(COST_FIELDS)

    def test_unclassified_ops_land_in_other(self):
        acct = UsageAccountant()
        acct.account("ops", None, wall_time=0.1)
        assert acct.to_dict()["principals"]["ops"]["other"]["requests"] == 1

    def test_record_bytes_uses_net_class(self):
        acct = UsageAccountant()
        acct.record_bytes("cms", bytes_in=100, bytes_out=900)
        net = acct.to_dict()["principals"]["cms"]["net"]
        assert net["bytes_in"] == 100
        assert net["bytes_out"] == 900
        assert net["requests"] == 0

    def test_sketches_track_principals_and_prefixes(self):
        acct = UsageAccountant(top_k=8)
        for _ in range(9):
            acct.account("cms", "add", lfn="/cms/data/f1")
        acct.account("ligo", "add", lfn="/ligo/cal/f1")
        assert acct.top_principals(1)[0][0] == "cms"
        assert acct.top_prefixes(1)[0][0] == "/cms/data"

    def test_principal_cap_folds_overflow_label(self):
        registry = MetricsRegistry()
        acct = UsageAccountant(metrics=registry, max_principals=3)
        for i in range(10):
            acct.account(f"tenant-{i}", "query", lfn=f"/t{i}/d/f")
        payload = acct.to_dict()
        # Exact rows: 3 real principals + the overflow aggregate.
        assert set(payload["principals"]) == {
            "tenant-0",
            "tenant-1",
            "tenant-2",
            OVERFLOW_PRINCIPAL,
        }
        assert payload["principals"][OVERFLOW_PRINCIPAL]["query"][
            "requests"
        ] == 7
        assert payload["overflowed"] == 7
        assert payload["principals_tracked"] == 10
        assert payload["max_principals"] == 3
        # Metric-label cardinality is bounded the same way: the registry
        # never grows one label set per client-supplied principal
        # (mirrors the bounded `<unknown>` rpc.errors label).
        labels = {
            key
            for key in registry.snapshot().counters
            if key.startswith("usage.requests")
        }
        assert len(labels) == 4
        assert any(OVERFLOW_PRINCIPAL in key for key in labels)

    def test_sketch_still_ranks_overflowed_principals(self):
        # The exact table caps, but the sketch's whole job is to keep
        # heavy hitters visible past the cap.
        acct = UsageAccountant(top_k=8, max_principals=2)
        acct.account("a", "query")
        acct.account("b", "query")
        for _ in range(50):
            acct.account("late-but-heavy", "query")
        assert acct.top_principals(1)[0][0] == "late-but-heavy"

    def test_anonymous_is_a_stable_label(self):
        acct = UsageAccountant()
        acct.account(ANONYMOUS_PRINCIPAL, "query")
        acct.account(ANONYMOUS_PRINCIPAL, "query")
        payload = acct.to_dict()
        assert payload["principals"][ANONYMOUS_PRINCIPAL]["query"][
            "requests"
        ] == 2
        assert payload["principals_tracked"] == 1


class TestUsageSnapshot:
    def make(self, principal="cms", requests=3.0):
        acct = UsageAccountant()
        for _ in range(int(requests)):
            acct.account(
                principal, "add", wall_time=0.1, lfn=f"/{principal}/d/f1"
            )
        return acct.snapshot()

    def test_merge_sums_cells_and_sketches(self):
        merged = self.make("cms", 3).merge(self.make("cms", 2))
        totals = merged.principal_totals()["cms"]
        assert totals["requests"] == 5
        assert totals["wall_time"] == pytest.approx(0.5)
        assert merged.principals.count("cms") == 5

    def test_merge_keeps_distinct_principals(self):
        merged = self.make("cms", 3).merge(self.make("ligo", 2))
        totals = merged.principal_totals()
        assert totals["cms"]["requests"] == 3
        assert totals["ligo"]["requests"] == 2

    def test_dict_round_trip(self):
        snap = self.make("cms", 4)
        clone = UsageSnapshot.from_dict(snap.to_dict())
        assert clone.to_dict() == snap.to_dict()

    def test_merge_usage_dicts_combines_payloads(self):
        a = self.make("cms", 3).to_dict()
        b = self.make("cms", 2).to_dict()
        b["enabled"] = True
        merged = merge_usage_dicts([a, b])
        assert merged["enabled"] is True
        assert merged["principals"]["cms"]["add"]["requests"] == 5
        assert merged["top_principals"][0]["principal"] == "cms"
        assert merged["top_principals"][0]["count"] == 5

    def test_merge_usage_dicts_empty_input(self):
        merged = merge_usage_dicts([])
        assert merged["principals"] == {}
        assert merged["enabled"] is True
