"""Security substrate: certificates, gridmap, ACLs, authorizer."""

import pytest

from repro.net.errors import AuthenticationError, AuthorizationError
from repro.net.messages import Hello
from repro.security.acl import AccessControlList, Privilege
from repro.security.authorizer import (
    ANONYMOUS_PRINCIPAL,
    Authorizer,
    SecurityPolicy,
    sanitize_principal,
)
from repro.security.credentials import (
    Certificate,
    CertificateAuthority,
    InvalidCertificateError,
)
from repro.security.gridmap import Gridmap

DN = "/DC=org/DC=globus/OU=ISI/CN=Ann Chervenak"


class TestCertificates:
    def test_issue_and_verify(self):
        ca = CertificateAuthority()
        cert = ca.issue(DN)
        assert ca.verify(cert) == DN

    def test_roundtrip_bytes(self):
        ca = CertificateAuthority()
        cert = ca.issue(DN)
        restored = Certificate.from_bytes(cert.to_bytes())
        assert ca.verify(restored) == DN

    def test_tampered_dn_rejected(self):
        ca = CertificateAuthority()
        cert = ca.issue(DN)
        forged = Certificate(
            "/CN=Mallory", cert.issuer, cert.not_before, cert.not_after,
            cert.signature,
        )
        with pytest.raises(InvalidCertificateError):
            ca.verify(forged)

    def test_wrong_ca_rejected(self):
        cert = CertificateAuthority("CA-A").issue(DN)
        with pytest.raises(InvalidCertificateError, match="issuer|signature"):
            CertificateAuthority("CA-A", key=b"different").verify(cert)

    def test_expired_rejected(self):
        ca = CertificateAuthority()
        cert = ca.issue(DN, lifetime=10.0, now=1000.0)
        with pytest.raises(InvalidCertificateError, match="expired"):
            ca.verify(cert, now=2000.0)

    def test_not_yet_valid_rejected(self):
        ca = CertificateAuthority()
        cert = ca.issue(DN, now=1000.0)
        with pytest.raises(InvalidCertificateError, match="not yet"):
            ca.verify(cert, now=500.0)

    def test_malformed_bytes_rejected(self):
        with pytest.raises(InvalidCertificateError):
            Certificate.from_bytes(b"not a cert")


class TestGridmap:
    def test_parse_and_map(self):
        gm = Gridmap.parse(f'"{DN}" annc\n# comment\n\n"/CN=Bob" bob\n')
        assert gm.map_dn(DN) == "annc"
        assert gm.map_dn("/CN=Bob") == "bob"
        assert len(gm) == 2

    def test_unmapped_dn_is_none(self):
        assert Gridmap().map_dn(DN) is None

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="line 1"):
            Gridmap.parse("no quotes here user")

    def test_escaped_quote_in_dn(self):
        gm = Gridmap.parse('"/CN=Weird \\"Name\\"" weird')
        assert gm.map_dn('/CN=Weird "Name"') == "weird"

    def test_dump_parse_roundtrip(self):
        gm = Gridmap({DN: "annc", "/CN=B": "b"})
        assert Gridmap.parse(gm.dump()).map_dn(DN) == "annc"

    def test_add_remove(self):
        gm = Gridmap()
        gm.add(DN, "annc")
        assert gm.map_dn(DN) == "annc"
        gm.remove(DN)
        assert gm.map_dn(DN) is None

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "grid-mapfile"
        path.write_text(f'"{DN}" annc\n')
        assert Gridmap.load(str(path)).map_dn(DN) == "annc"


class TestAcl:
    def test_dn_pattern_grants(self):
        acl = AccessControlList()
        acl.add(r"/DC=org/DC=globus/.*", ["lrc_read", "lrc_write"])
        privs = acl.privileges_for(DN, None)
        assert Privilege.LRC_READ in privs and Privilege.LRC_WRITE in privs

    def test_fullmatch_semantics(self):
        acl = AccessControlList()
        acl.add(r"/CN=exact", [Privilege.ADMIN])
        assert not acl.allows(Privilege.ADMIN, "/CN=exact-but-longer", None)
        assert acl.allows(Privilege.ADMIN, "/CN=exact", None)

    def test_local_user_pattern(self):
        acl = AccessControlList()
        acl.add(r"annc", ["admin"], match_dn=False)
        assert acl.allows(Privilege.ADMIN, DN, "annc")
        assert not acl.allows(Privilege.ADMIN, DN, "mallory")

    def test_grants_union_across_entries(self):
        acl = AccessControlList()
        acl.add(r".*", ["lrc_read"])
        acl.add(r"/DC=org.*", ["lrc_write"])
        privs = acl.privileges_for(DN, None)
        assert len(privs) == 2

    def test_no_match_no_privileges(self):
        acl = AccessControlList()
        acl.add(r"/CN=other", ["admin"])
        assert acl.privileges_for(DN, None) == frozenset()

    def test_unknown_privilege_string(self):
        with pytest.raises(ValueError):
            AccessControlList().add(".*", ["fly"])


class TestAuthorizer:
    def make_policy(self):
        ca = CertificateAuthority()
        gridmap = Gridmap({DN: "annc"})
        acl = AccessControlList()
        acl.add(r"/DC=org/DC=globus/.*", ["lrc_read", "lrc_write"])
        acl.add(r"annc", ["admin"], match_dn=False)
        return ca, SecurityPolicy(enabled=True, ca=ca, gridmap=gridmap, acl=acl)

    def test_open_policy_allows_everything(self):
        auth = Authorizer(SecurityPolicy.open())
        assert auth.authenticate(Hello(), "peer") is None
        auth.check(Privilege.ADMIN, None)  # no raise

    def test_authenticate_valid_certificate(self):
        ca, policy = self.make_policy()
        cert = ca.issue(DN)
        auth = Authorizer(policy)
        assert auth.authenticate(Hello(credential=cert.to_bytes()), "p") == DN

    def test_missing_credential_rejected(self):
        _, policy = self.make_policy()
        with pytest.raises(AuthenticationError):
            Authorizer(policy).authenticate(Hello(), "p")

    def test_bad_credential_rejected(self):
        _, policy = self.make_policy()
        other_ca = CertificateAuthority("Evil CA")
        cert = other_ca.issue(DN)
        with pytest.raises(AuthenticationError):
            Authorizer(policy).authenticate(
                Hello(credential=cert.to_bytes()), "p"
            )

    def test_check_granted_privilege(self):
        _, policy = self.make_policy()
        Authorizer(policy).check(Privilege.LRC_WRITE, DN)

    def test_check_via_gridmap_local_user(self):
        _, policy = self.make_policy()
        Authorizer(policy).check(Privilege.ADMIN, DN)

    def test_check_denied_privilege(self):
        _, policy = self.make_policy()
        with pytest.raises(AuthorizationError):
            Authorizer(policy).check(Privilege.RLI_WRITE, DN)

    def test_anonymous_denied_when_enabled(self):
        _, policy = self.make_policy()
        with pytest.raises(AuthorizationError):
            Authorizer(policy).check(Privilege.LRC_READ, None)


class TestAccountPrincipal:
    """Bounded usage-accounting identity (never a raw DN or junk label)."""

    def test_sanitize_accepts_plain_names(self):
        assert sanitize_principal("cms-prod") == "cms-prod"
        assert sanitize_principal("user_42") == "user_42"

    def test_sanitize_rejects_empty_and_none(self):
        assert sanitize_principal(None) == ANONYMOUS_PRINCIPAL
        assert sanitize_principal("") == ANONYMOUS_PRINCIPAL

    def test_sanitize_rejects_oversized(self):
        assert sanitize_principal("x" * 65) == ANONYMOUS_PRINCIPAL
        assert sanitize_principal("x" * 64) == "x" * 64

    def test_sanitize_rejects_metric_unsafe_characters(self):
        # Anything that would corrupt a name{k=v} metric key collapses.
        for bad in ("a=b", "a,b", "a{b", "a}b", 'a"b', "a\nb"):
            assert sanitize_principal(bad) == ANONYMOUS_PRINCIPAL

    def test_mapped_dn_becomes_local_user(self):
        policy = SecurityPolicy(enabled=True, gridmap=Gridmap({DN: "annc"}))
        auth = Authorizer(policy)
        # Authenticated identity always wins over any declared label.
        assert auth.account_principal(DN, declared="spoofed") == "annc"

    def test_unmapped_dn_is_stable_anonymous_not_the_dn(self):
        auth = Authorizer(SecurityPolicy(enabled=True))
        assert auth.account_principal("/CN=Nobody") == ANONYMOUS_PRINCIPAL

    def test_without_dn_declared_principal_is_sanitized(self):
        auth = Authorizer(SecurityPolicy.open())
        assert auth.account_principal(None, declared="cms-prod") == "cms-prod"
        assert (
            auth.account_principal(None, declared="e=vil")
            == ANONYMOUS_PRINCIPAL
        )

    def test_nothing_at_all_is_anonymous(self):
        auth = Authorizer(SecurityPolicy.open())
        assert auth.account_principal(None) == ANONYMOUS_PRINCIPAL
