"""Virtual-time sharded-cluster experiments (determinism + claims)."""

from __future__ import annotations

import pytest

from repro.obs.analyze import analyze_store
from repro.sim.cluster_sim import cluster_experiment


class TestScaleOut:
    def test_aggregate_rate_scales_with_shards(self):
        r1 = cluster_experiment(1, 0, duration=120.0)
        r2 = cluster_experiment(2, 0, duration=120.0)
        r4 = cluster_experiment(4, 0, duration=120.0)
        assert r2.rate > 1.6 * r1.rate
        assert r4.rate > 1.5 * r2.rate

    def test_single_shard_saturates_at_service_rate(self):
        r = cluster_experiment(1, 0, service_time=0.005, duration=120.0)
        assert r.rate == pytest.approx(200.0, rel=0.05)

    def test_mirrors_add_read_capacity(self):
        r0 = cluster_experiment(2, 0, duration=120.0)
        r2 = cluster_experiment(2, 2, duration=120.0)
        assert r2.rate > 1.5 * r0.rate
        assert r2.master_served == 0  # mirrors absorb every read
        assert r0.mirror_served == 0

    def test_deterministic(self):
        a = cluster_experiment(2, 1, duration=60.0, seed=13)
        b = cluster_experiment(2, 1, duration=60.0, seed=13)
        assert a.queries_completed == b.queries_completed
        assert a.mean_latency == b.mean_latency


class TestStaleness:
    def test_healthy_feed_sawtooths_under_interval(self):
        r = cluster_experiment(2, 1, duration=120.0, push_interval=5.0)
        assert max(r.peak_staleness.values()) <= 5.0 + 1.0

    def test_stalled_feed_trips_burn_detector(self):
        r = cluster_experiment(
            2,
            1,
            duration=600.0,
            push_interval=5.0,
            stall_feed_of="shard0-m0",
            stall_at=120.0,
        )
        assert r.peak_staleness["shard0-m0"] > 400.0
        assert r.peak_staleness["shard1-m0"] <= 6.0
        detections = analyze_store(r.store, staleness_slo=15.0)
        burns = [d for d in detections if d.kind == "staleness_burn"]
        assert burns, "stalled mirror feed must trip the burn detector"
        assert all(
            "shard0" in d.details["series"] for d in burns
        ), [d.details for d in burns]

    def test_unknown_stall_target_rejected(self):
        with pytest.raises(ValueError):
            cluster_experiment(1, 1, stall_feed_of="nope")


class TestSLOBurn:
    def test_shard_outage_fires_fast_burn_on_that_shard_only(self):
        from repro.testing.faults import FailureSchedule

        r = cluster_experiment(
            2,
            1,
            duration=600.0,
            faults=FailureSchedule.always(),
            fault_shard="shard0",
            fault_after=200.0,
            seed=3,
        )
        assert r.queries_failed > 0
        fast = [a for a in r.slo_alerts if a["window"] == "fast"]
        assert fast, r.slo_alerts
        assert all(a["shard"] == "shard0" for a in r.slo_alerts)
        assert all(a["severity"] == "critical" for a in fast)
        burns = [d for d in analyze_store(r.store) if d.kind == "slo_burn"]
        assert burns, "recorded burn series must trip the analyzer"
        assert all("shard0" in d.details["series"] for d in burns)

    def test_fault_free_run_is_quiet(self):
        r = cluster_experiment(2, 1, duration=600.0, seed=3)
        assert r.queries_failed == 0
        assert r.slo_alerts == []
        assert not [
            d for d in analyze_store(r.store) if d.kind == "slo_burn"
        ]

    def test_unknown_fault_shard_rejected(self):
        from repro.testing.faults import FailureSchedule

        with pytest.raises(ValueError):
            cluster_experiment(
                1, 1, faults=FailureSchedule.always(), fault_shard="nope"
            )


class TestNoisyNeighbor:
    SKEWED = {"cms-prod": 8.0, "atlas": 1.0, "ligo": 1.0}
    EVEN = {"a": 1.0, "b": 1.0, "c": 1.0}

    def test_usage_split_follows_weights(self):
        r = cluster_experiment(2, 0, duration=300.0, principals=self.SKEWED)
        total = sum(r.usage_by_principal.values())
        assert total > 0
        share = r.usage_by_principal["cms-prod"] / total
        assert share == pytest.approx(0.8, abs=0.05)
        # Per-principal series landed under the live accountant's key shape.
        keys = [k for k, _ in r.store.items()]
        assert "usage.requests{principal=cms-prod}" in keys

    def test_deterministic_usage(self):
        a = cluster_experiment(2, 1, duration=60.0, principals=self.SKEWED)
        b = cluster_experiment(2, 1, duration=60.0, principals=self.SKEWED)
        assert a.usage_by_principal == b.usage_by_principal

    def test_skewed_overload_names_the_dominant_principal(self):
        from repro.testing.faults import FailureSchedule

        r = cluster_experiment(
            2,
            1,
            duration=600.0,
            faults=FailureSchedule.always(),
            fault_shard="shard0",
            fault_after=200.0,
            principals=self.SKEWED,
            seed=3,
        )
        detections = analyze_store(r.store)
        noisy = [d for d in detections if d.kind == "noisy_neighbor"]
        assert noisy, [d.kind for d in detections]
        assert all(d.details["principal"] == "cms-prod" for d in noisy)
        assert all(d.details["share"] >= 0.5 for d in noisy)

    def test_even_traffic_never_fires_even_under_overload(self):
        from repro.testing.faults import FailureSchedule

        r = cluster_experiment(
            2,
            1,
            duration=600.0,
            faults=FailureSchedule.always(),
            fault_shard="shard0",
            fault_after=200.0,
            principals=self.EVEN,
            seed=3,
        )
        detections = analyze_store(r.store)
        assert [d for d in detections if d.kind == "slo_burn"]
        assert not [d for d in detections if d.kind == "noisy_neighbor"]

    def test_baseline_run_is_quiet(self):
        r = cluster_experiment(2, 1, duration=600.0, principals=self.SKEWED)
        assert not [
            d for d in analyze_store(r.store) if d.kind == "noisy_neighbor"
        ]

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            cluster_experiment(1, 0, principals={"a": 0.0})
