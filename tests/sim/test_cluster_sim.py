"""Virtual-time sharded-cluster experiments (determinism + claims)."""

from __future__ import annotations

import pytest

from repro.obs.analyze import analyze_store
from repro.sim.cluster_sim import cluster_experiment


class TestScaleOut:
    def test_aggregate_rate_scales_with_shards(self):
        r1 = cluster_experiment(1, 0, duration=120.0)
        r2 = cluster_experiment(2, 0, duration=120.0)
        r4 = cluster_experiment(4, 0, duration=120.0)
        assert r2.rate > 1.6 * r1.rate
        assert r4.rate > 1.5 * r2.rate

    def test_single_shard_saturates_at_service_rate(self):
        r = cluster_experiment(1, 0, service_time=0.005, duration=120.0)
        assert r.rate == pytest.approx(200.0, rel=0.05)

    def test_mirrors_add_read_capacity(self):
        r0 = cluster_experiment(2, 0, duration=120.0)
        r2 = cluster_experiment(2, 2, duration=120.0)
        assert r2.rate > 1.5 * r0.rate
        assert r2.master_served == 0  # mirrors absorb every read
        assert r0.mirror_served == 0

    def test_deterministic(self):
        a = cluster_experiment(2, 1, duration=60.0, seed=13)
        b = cluster_experiment(2, 1, duration=60.0, seed=13)
        assert a.queries_completed == b.queries_completed
        assert a.mean_latency == b.mean_latency


class TestStaleness:
    def test_healthy_feed_sawtooths_under_interval(self):
        r = cluster_experiment(2, 1, duration=120.0, push_interval=5.0)
        assert max(r.peak_staleness.values()) <= 5.0 + 1.0

    def test_stalled_feed_trips_burn_detector(self):
        r = cluster_experiment(
            2,
            1,
            duration=600.0,
            push_interval=5.0,
            stall_feed_of="shard0-m0",
            stall_at=120.0,
        )
        assert r.peak_staleness["shard0-m0"] > 400.0
        assert r.peak_staleness["shard1-m0"] <= 6.0
        detections = analyze_store(r.store, staleness_slo=15.0)
        burns = [d for d in detections if d.kind == "staleness_burn"]
        assert burns, "stalled mirror feed must trip the burn detector"
        assert all(
            "shard0" in d.details["series"] for d in burns
        ), [d.details for d in burns]

    def test_unknown_stall_target_rejected(self):
        with pytest.raises(ValueError):
            cluster_experiment(1, 1, stall_feed_of="nope")


class TestSLOBurn:
    def test_shard_outage_fires_fast_burn_on_that_shard_only(self):
        from repro.testing.faults import FailureSchedule

        r = cluster_experiment(
            2,
            1,
            duration=600.0,
            faults=FailureSchedule.always(),
            fault_shard="shard0",
            fault_after=200.0,
            seed=3,
        )
        assert r.queries_failed > 0
        fast = [a for a in r.slo_alerts if a["window"] == "fast"]
        assert fast, r.slo_alerts
        assert all(a["shard"] == "shard0" for a in r.slo_alerts)
        assert all(a["severity"] == "critical" for a in fast)
        burns = [d for d in analyze_store(r.store) if d.kind == "slo_burn"]
        assert burns, "recorded burn series must trip the analyzer"
        assert all("shard0" in d.details["series"] for d in burns)

    def test_fault_free_run_is_quiet(self):
        r = cluster_experiment(2, 1, duration=600.0, seed=3)
        assert r.queries_failed == 0
        assert r.slo_alerts == []
        assert not [
            d for d in analyze_store(r.store) if d.kind == "slo_burn"
        ]

    def test_unknown_fault_shard_rejected(self):
        from repro.testing.faults import FailureSchedule

        with pytest.raises(ValueError):
            cluster_experiment(
                1, 1, faults=FailureSchedule.always(), fault_shard="nope"
            )
