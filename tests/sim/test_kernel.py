"""Simulation kernel tests: events, processes, determinism."""

import pytest

from repro.sim.kernel import Event, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]
        assert sim.now == 2.0

    def test_equal_times_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_run_until_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1] and sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestEvents:
    def test_succeed_triggers_callbacks(self):
        sim = Simulator()
        event = sim.event()
        got = []
        event.add_callback(got.append)
        event.succeed("value")
        sim.run()
        assert got == ["value"]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_callback_after_dispatch_still_fires(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("v")
        sim.run()
        late = []
        event.add_callback(late.append)
        sim.run()
        assert late == ["v"]

    def test_timeout_negative_rejected(self):
        with pytest.raises(ValueError):
            Simulator().timeout(-1)


class TestProcesses:
    def test_process_advances_time(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.5)
            yield sim.timeout(2.5)
            return "done"

        result = sim.run(sim.process(proc()))
        assert result == "done" and sim.now == 4.0

    def test_yield_plain_number_is_timeout(self):
        sim = Simulator()

        def proc():
            yield 3
            yield 0.5

        sim.run(sim.process(proc()))
        assert sim.now == 3.5

    def test_process_waits_on_process(self):
        sim = Simulator()
        order = []

        def inner():
            yield sim.timeout(2)
            order.append("inner")
            return 42

        def outer():
            value = yield sim.process(inner())
            order.append(f"outer:{value}")

        sim.run(sim.process(outer()))
        assert order == ["inner", "outer:42"]

    def test_yield_bad_type_raises(self):
        sim = Simulator()

        def proc():
            yield "not an event"

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_exception_in_process_propagates(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            raise ValueError("boom")

        sim.process(proc())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_timeout_value_passed_to_yield(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield sim.timeout(1, "tick")
            got.append(value)

        sim.run(sim.process(proc()))
        assert got == ["tick"]


class TestAllOf:
    def test_waits_for_all(self):
        sim = Simulator()

        def p(delay):
            yield sim.timeout(delay)
            return delay

        gate = sim.all_of([sim.process(p(d)) for d in (3, 1, 2)])
        values = sim.run(gate)
        assert values == [3, 1, 2]
        assert sim.now == 3

    def test_empty_all_of_triggers_immediately(self):
        sim = Simulator()
        assert sim.run(sim.all_of([])) == []

    def test_run_until_event_deadlock_detected(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(RuntimeError, match="deadlock"):
            sim.run(never)


class TestDeterminism:
    def test_identical_runs_identical_trace(self):
        def run_once():
            sim = Simulator()
            trace = []

            def proc(pid):
                for i in range(3):
                    yield sim.timeout(0.1 * (pid + 1))
                    trace.append((round(sim.now, 6), pid, i))

            for pid in range(4):
                sim.process(proc(pid))
            sim.run()
            return trace

        assert run_once() == run_once()
