"""Experiment-model tests: the paper's shapes must hold."""

import pytest

from repro.sim.models import (
    LANCalibration,
    WANCalibration,
    bloom_filter_size_bits,
    bloom_table3_row,
    bloom_update_times_wan,
    uncompressed_update_times,
)


class TestUncompressedModel:
    def test_single_lrc_1m_near_paper(self):
        """Paper: 831 s for one 1M-entry uncompressed update."""
        r = uncompressed_update_times(1_000_000, 1, rounds=2)
        assert 750 < r.mean_update_time < 950

    def test_update_time_scales_linearly_with_lrcs(self):
        """Paper: 6 LRCs -> ~5102 s (≈6x the single-LRC time)."""
        one = uncompressed_update_times(1_000_000, 1, rounds=3)
        six = uncompressed_update_times(1_000_000, 6, rounds=3)
        ratio = six.mean_update_time / one.mean_update_time
        assert 5.0 < ratio < 7.0

    def test_update_time_scales_with_size(self):
        small = uncompressed_update_times(10_000, 1, rounds=2)
        large = uncompressed_update_times(1_000_000, 1, rounds=2)
        assert large.mean_update_time > 50 * small.mean_update_time

    def test_deterministic(self):
        a = uncompressed_update_times(100_000, 3, rounds=3)
        b = uncompressed_update_times(100_000, 3, rounds=3)
        assert a.per_update_times == b.per_update_times


class TestBloomWANModel:
    def test_single_client_5m_near_paper(self):
        """Paper Table 3: 6.8 s for a 5M-entry filter over the WAN."""
        r = bloom_update_times_wan(5_000_000, 1)
        assert 6.0 < r.mean_update_time < 8.0

    def test_flat_up_to_seven_clients(self):
        """Paper Figure 13: 6.5-7 s up to seven concurrent clients."""
        one = bloom_update_times_wan(5_000_000, 1)
        seven = bloom_update_times_wan(5_000_000, 7)
        assert seven.mean_update_time < one.mean_update_time * 1.15

    def test_rises_at_fourteen_clients(self):
        """Paper Figure 13: ~11.5 s at fourteen clients."""
        seven = bloom_update_times_wan(5_000_000, 7)
        fourteen = bloom_update_times_wan(5_000_000, 14)
        assert fourteen.mean_update_time > seven.mean_update_time * 1.4
        assert 9.0 < fourteen.mean_update_time < 14.0

    def test_orders_of_magnitude_faster_than_uncompressed(self):
        """Paper §5.5: 'two to three orders of magnitude better'."""
        bloom = bloom_update_times_wan(1_000_000, 6)
        uncompressed = uncompressed_update_times(1_000_000, 6, rounds=2)
        assert uncompressed.mean_update_time > 100 * bloom.mean_update_time

    def test_deterministic_despite_jitter(self):
        a = bloom_update_times_wan(1_000_000, 5)
        b = bloom_update_times_wan(1_000_000, 5)
        assert a.per_update_times == b.per_update_times


class TestTable3:
    def test_filter_sizes_match_paper(self):
        """Paper: 1M bits / 10M bits / 50M bits for 100K / 1M / 5M."""
        assert bloom_filter_size_bits(100_000) == 1_000_000
        assert bloom_filter_size_bits(1_000_000) == 10_000_000
        assert bloom_filter_size_bits(5_000_000) == 50_000_000

    def test_update_times_ordered_and_in_range(self):
        rows = [
            bloom_table3_row(n, measure_generation=False)
            for n in (100_000, 1_000_000, 5_000_000)
        ]
        times = [r.update_time for r in rows]
        assert times[0] < times[1] < times[2]
        assert times[0] < 1.0          # paper: "less than 1"
        assert 1.0 < times[1] < 2.5    # paper: 1.67
        assert 5.5 < times[2] < 8.0    # paper: 6.8

    def test_generation_time_measured(self):
        row = bloom_table3_row(50_000, measure_generation=True)
        assert row.generation_time > 0

    def test_generation_extrapolation(self):
        row = bloom_table3_row(
            200_000, measure_generation=True, generation_sample=20_000
        )
        direct = bloom_table3_row(20_000, measure_generation=True)
        # Extrapolated 200k time should be roughly 10x the 20k time.
        assert row.generation_time > 3 * direct.generation_time


class TestCalibrations:
    def test_lan_ingest_rate_matches_831s(self):
        calib = LANCalibration()
        assert 1_000_000 / calib.rli_ingest_entries_per_sec == pytest.approx(831.0)

    def test_wan_defaults(self):
        calib = WANCalibration()
        assert calib.rtt == pytest.approx(0.0638)
        assert calib.bloom_bits_per_entry == 10
