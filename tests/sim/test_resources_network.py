"""Resource queueing and shared-link bandwidth model tests."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import (
    NetworkPath,
    SharedLink,
    lan_path,
    tcp_window_cap_bps,
    wan_path,
)
from repro.sim.resources import Resource


class TestResource:
    def test_capacity_one_serializes(self):
        sim = Simulator()
        res = Resource(sim, 1)
        finish = []

        def job(tag):
            yield res.acquire()
            try:
                yield sim.timeout(10)
            finally:
                res.release()
            finish.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.process(job(tag))
        sim.run()
        assert finish == [("a", 10), ("b", 20), ("c", 30)]

    def test_capacity_n_parallelism(self):
        sim = Simulator()
        res = Resource(sim, 3)
        finish = []

        def job():
            yield res.acquire()
            try:
                yield sim.timeout(10)
            finally:
                res.release()
            finish.append(sim.now)

        for _ in range(3):
            sim.process(job())
        sim.run()
        assert finish == [10, 10, 10]

    def test_fifo_order(self):
        sim = Simulator()
        res = Resource(sim, 1)
        order = []

        def job(tag, start_delay):
            yield sim.timeout(start_delay)
            yield res.acquire()
            order.append(tag)
            try:
                yield sim.timeout(5)
            finally:
                res.release()

        sim.process(job("first", 0))
        sim.process(job("second", 1))
        sim.process(job("third", 2))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_release_without_acquire_raises(self):
        with pytest.raises(RuntimeError):
            Resource(Simulator(), 1).release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)

    def test_wait_statistics(self):
        sim = Simulator()
        res = Resource(sim, 1)

        def job():
            yield res.acquire()
            try:
                yield sim.timeout(10)
            finally:
                res.release()

        sim.process(job())
        sim.process(job())
        sim.run()
        assert res.total_acquisitions == 2
        assert res.mean_wait() == pytest.approx(5.0)  # (0 + 10) / 2

    def test_use_helper(self):
        sim = Simulator()
        res = Resource(sim, 1)
        sim.run(res.use(7.0))
        assert sim.now == 7.0 and res.in_use == 0


class TestSharedLink:
    def test_single_transfer_time(self):
        sim = Simulator()
        link = SharedLink(sim, bandwidth_bps=8e6)  # 1 MB/s
        sim.run(link.transfer(1_000_000))
        assert sim.now == pytest.approx(1.0)

    def test_two_flows_share_bandwidth(self):
        sim = Simulator()
        link = SharedLink(sim, bandwidth_bps=8e6)
        e1 = link.transfer(1_000_000)
        e2 = link.transfer(1_000_000)
        sim.run(sim.all_of([e1, e2]))
        assert sim.now == pytest.approx(2.0)  # half rate each

    def test_late_joiner_slows_first_flow(self):
        sim = Simulator()
        link = SharedLink(sim, bandwidth_bps=8e6)
        done = {}

        def first():
            event = link.transfer(1_000_000)
            yield event
            done["first"] = sim.now

        def second():
            yield sim.timeout(0.5)
            event = link.transfer(1_000_000)
            yield event
            done["second"] = sim.now

        sim.process(first())
        sim.process(second())
        sim.run()
        # First: 0.5 MB at full rate, then shares; finishes at 1.5 s.
        # Second: 0.5 MB while sharing (0.5-1.5 s), 0.5 MB alone -> 2.0 s.
        assert done["first"] == pytest.approx(1.5)
        assert done["second"] == pytest.approx(2.0)

    def test_per_flow_cap(self):
        sim = Simulator()
        link = SharedLink(sim, bandwidth_bps=100e6, per_flow_cap_bps=8e6)
        sim.run(link.transfer(1_000_000))
        assert sim.now == pytest.approx(1.0)  # capped, not 0.08 s

    def test_zero_byte_transfer_completes_immediately(self):
        sim = Simulator()
        link = SharedLink(sim, bandwidth_bps=1e6)
        sim.run(link.transfer(0))
        assert sim.now == 0.0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            SharedLink(Simulator(), 1e6).transfer(-1)

    def test_bytes_accounted(self):
        sim = Simulator()
        link = SharedLink(sim, 1e6)
        sim.run(link.transfer(500))
        assert link.bytes_carried == 500
        assert link.completed_transfers == 1

    def test_back_to_back_transfers(self):
        """Regression: residual float bits must not stall virtual time."""
        sim = Simulator()
        path = NetworkPath(rtt=0.0002, link=SharedLink(sim, 100e6))

        def seq():
            for _ in range(5):
                yield sim.process(path.send(80_000))

        sim.run(sim.process(seq()))
        assert sim.now == pytest.approx(5 * (0.0002 + 80_000 * 8 / 100e6))


class TestPaths:
    def test_tcp_window_cap(self):
        cap = tcp_window_cap_bps(64 * 1024, 0.0638)
        assert cap == pytest.approx(8.2e6, rel=0.01)

    def test_wan_single_bloom_update_near_paper(self):
        """One 5M-entry filter (50 Mb) over the WAN ≈ 6.2 s transfer."""
        sim = Simulator()
        path = wan_path(sim)
        sim.run(sim.process(path.send(50e6 / 8)))
        assert 5.5 < sim.now < 7.0

    def test_lan_transfer_fast(self):
        sim = Simulator()
        path = lan_path(sim)
        sim.run(sim.process(path.send(1_000_000)))
        assert sim.now < 0.2
