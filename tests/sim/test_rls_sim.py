"""Deployment-simulator tests: staleness and crash recovery."""

import pytest

from repro.sim.rls_sim import (
    RecoveryResult,
    SimLRC,
    SimPolicy,
    SimRLI,
    StalenessResult,
    recovery_experiment,
    staleness_experiment,
)
from repro.sim.kernel import Simulator

import random


class TestSimLRC:
    def test_churn_keeps_size_roughly_constant(self):
        sim = Simulator()
        lrc = SimLRC(sim, "l", 1000, churn_per_sec=5.0, rng=random.Random(1))
        sim.run(until=600.0)
        assert 700 < len(lrc.names) < 1300

    def test_no_churn_is_static(self):
        sim = Simulator()
        lrc = SimLRC(sim, "l", 100, churn_per_sec=0.0, rng=random.Random(1))
        sim.run(until=100.0)
        assert len(lrc.names) == 100

    def test_take_delta_drains(self):
        sim = Simulator()
        lrc = SimLRC(sim, "l", 10, churn_per_sec=10.0, rng=random.Random(1))
        sim.run(until=10.0)
        added, removed = lrc.take_delta()
        assert added or removed
        assert lrc.take_delta() == (set(), set())


class TestSimRLI:
    def test_entries_expire(self):
        sim = Simulator()
        rli = SimRLI(sim, SimPolicy(rli_timeout=100.0))
        rli.apply_full(["x"])
        assert rli.contains("x")
        sim.run(until=101.0)
        assert not rli.contains("x")

    def test_delta_removes(self):
        sim = Simulator()
        rli = SimRLI(sim, SimPolicy())
        rli.apply_full(["x", "y"])
        rli.apply_delta([], ["x"])
        assert not rli.contains("x") and rli.contains("y")

    def test_bloom_replaces(self):
        sim = Simulator()
        rli = SimRLI(sim, SimPolicy())
        rli.apply_full(["old"])
        rli.apply_bloom(["new"])
        assert rli.contains("new") and not rli.contains("old")

    def test_crash_loses_state_and_updates_ignored_while_down(self):
        sim = Simulator()
        rli = SimRLI(sim, SimPolicy())
        rli.apply_full(["x"])
        rli.crash()
        assert not rli.contains("x")
        rli.apply_full(["y"])  # dropped: server is down
        rli.restart()
        assert not rli.contains("y")
        rli.apply_full(["z"])
        assert rli.contains("z")


class TestStalenessExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        kwargs = dict(catalog_size=2000, churn_per_sec=1.0, duration=3600.0)
        return {
            mode: staleness_experiment(mode, **kwargs)
            for mode in ("full-only", "immediate", "bloom")
        }

    def test_immediate_mode_far_fresher_than_full_only(self, results):
        """The §3.3 claim: immediate mode reduces staleness."""
        assert (
            results["immediate"].stale_fraction
            < 0.5 * results["full-only"].stale_fraction
        )

    def test_bloom_traffic_cheapest_per_refresh_rate(self, results):
        """At the same refresh cadence, Bloom sends far fewer bytes."""
        assert results["bloom"].bytes_sent < 0.5 * results["immediate"].bytes_sent
        assert results["bloom"].updates_sent == results["immediate"].updates_sent

    def test_full_only_ghosts_dominate(self, results):
        """Under full-only updates, deletions linger until the soft-state
        timeout — ghosts, not misses, are the staleness."""
        r = results["full-only"]
        assert r.ghost_fraction > r.miss_fraction

    def test_deterministic(self):
        a = staleness_experiment("immediate", catalog_size=500, duration=600.0)
        b = staleness_experiment("immediate", catalog_size=500, duration=600.0)
        assert a.stale_fraction == b.stale_fraction
        assert a.bytes_sent == b.bytes_sent

    def test_result_fields_consistent(self, results):
        for r in results.values():
            assert isinstance(r, StalenessResult)
            assert 0 <= r.miss_fraction <= r.stale_fraction <= 1
            assert r.samples > 100


class TestRecoveryExperiment:
    def test_recovery_bounded_by_full_interval(self):
        """§2's soft-state rebuild: the index recovers within one full
        update interval (the last LRC's next scheduled push)."""
        result = recovery_experiment(full_interval=300.0, catalog_size=1000)
        assert isinstance(result, RecoveryResult)
        assert result.recovery_time <= 300.0 + 10.0

    def test_recovery_scales_with_interval(self):
        fast = recovery_experiment(full_interval=120.0, catalog_size=500)
        slow = recovery_experiment(full_interval=600.0, catalog_size=500)
        assert slow.recovery_time > 2 * fast.recovery_time

    def test_coverage_curve_monotone_rise(self):
        result = recovery_experiment(full_interval=200.0, catalog_size=500)
        coverages = [c for _, c in result.coverage_curve]
        assert coverages[0] < 0.5  # right after crash: mostly empty
        assert coverages[-1] >= 0.99
        # Rebuild is (weakly) monotone: coverage never decreases.
        assert all(b >= a - 1e-9 for a, b in zip(coverages, coverages[1:]))


class TestFaultInjection:
    def test_lossy_delivery_counts_failures(self):
        from repro.testing import FailureSchedule

        faults = FailureSchedule.pattern("F" * 5)  # first 5 pushes lost
        result = staleness_experiment(
            "immediate", catalog_size=500, churn_per_sec=1.0,
            duration=1800.0, faults=faults,
        )
        assert result.updates_failed == 5
        assert result.updates_sent > result.updates_failed

    def test_failed_deltas_requeue_and_converge(self):
        """A lossy update path must not lose changes permanently: once the
        faults stop, the index converges just like the reliable manager."""
        from repro.testing import FailureSchedule

        clean = staleness_experiment(
            "immediate", catalog_size=500, churn_per_sec=1.0, duration=3600.0,
        )
        lossy = staleness_experiment(
            "immediate", catalog_size=500, churn_per_sec=1.0, duration=3600.0,
            faults=FailureSchedule.pattern("FF.FF."),
        )
        assert lossy.updates_failed == 4
        # Re-queued deltas are delivered on a later cycle, so answer
        # quality degrades only modestly versus the fault-free run.
        assert lossy.stale_fraction <= clean.stale_fraction + 0.05

    def test_always_failing_full_only_goes_fully_stale(self):
        from repro.testing import FailureSchedule

        result = staleness_experiment(
            "full-only", catalog_size=200, churn_per_sec=1.0,
            duration=7200.0, full_interval=600.0,
            faults=FailureSchedule.always(),
        )
        # Every push lost and entries time out: answers go bad.
        assert result.updates_failed == result.updates_sent
        assert result.stale_fraction > 0.2
