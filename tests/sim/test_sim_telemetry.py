"""Virtual-time telemetry: sim staleness trajectories feed the detectors."""

from __future__ import annotations

from repro.obs.analyze import analyze_store, detect_staleness_burn
from repro.obs.timeseries import SeriesStore
from repro.sim.kernel import Simulator
from repro.sim.rls_sim import SimPolicy, SimRLI, staleness_experiment


def make_rli():
    sim = Simulator()
    return sim, SimRLI(sim, SimPolicy(mode="full"))


class TestSimRLIStalenessAge:
    def test_zero_before_any_update(self):
        sim, rli = make_rli()
        assert rli.staleness_age() == 0.0

    def test_ages_on_the_virtual_clock(self):
        sim, rli = make_rli()
        rli.apply_full({"a"})

        def advance():
            yield sim.timeout(45.0)

        sim.process(advance())
        sim.run(until=45.0)
        assert rli.staleness_age() == 45.0

    def test_every_apply_kind_resets_the_age(self):
        for apply in ("apply_full", "apply_delta", "apply_bloom"):
            sim, rli = make_rli()

            def advance():
                yield sim.timeout(30.0)

            sim.process(advance())
            sim.run(until=30.0)
            if apply == "apply_delta":
                rli.apply_delta({"a"}, set())
            else:
                getattr(rli, apply)({"a"})
            assert rli.staleness_age() == 0.0, apply

    def test_crash_clears_the_age(self):
        sim, rli = make_rli()
        rli.apply_full({"a"})
        rli.crash()
        assert rli.staleness_age() == 0.0
        assert rli.last_update_at is None


class TestExperimentStore:
    def test_records_collector_compatible_keys(self):
        result = staleness_experiment(
            "full", catalog_size=200, duration=1800.0, full_interval=600.0
        )
        keys = result.store.keys()
        assert "rli.staleness_age" in keys
        assert "probe.stale_fraction" in keys
        series = result.store.series("rli.staleness_age")
        assert len(series) > 0
        # Samples land on the virtual clock, one per probe interval.
        times = series.times()
        assert times == sorted(times)
        assert times[-1] <= 1800.0

    def test_healthy_full_updates_stay_under_slo(self):
        """With on-schedule full updates the age sawtooths below the
        full interval, so a burn check against interval+slack is clean."""
        result = staleness_experiment(
            "full", catalog_size=200, duration=3600.0, full_interval=600.0
        )
        ages = result.store.series("rli.staleness_age")
        assert max(ages.values()) < 700.0
        assert detect_staleness_burn(ages, slo_seconds=700.0) == []

    def test_detector_fires_on_starved_index(self):
        """An update interval far beyond the SLO shows up as a burn — the
        exact pathology detect_staleness_burn exists to catch."""
        result = staleness_experiment(
            "full", catalog_size=200, duration=3600.0, full_interval=3000.0
        )
        ages = result.store.series("rli.staleness_age")
        detections = detect_staleness_burn(ages, slo_seconds=300.0)
        assert detections and detections[0].kind == "staleness_burn"
        assert detections[0].details["worst_age"] > 300.0

    def test_analyze_store_runs_on_sim_output(self):
        result = staleness_experiment(
            "full", catalog_size=200, duration=3600.0, full_interval=3000.0
        )
        detections = analyze_store(result.store, staleness_slo=300.0)
        assert any(d.kind == "staleness_burn" for d in detections)
        [burn] = [d for d in detections if d.kind == "staleness_burn"]
        assert burn.details["series"] == "rli.staleness_age"

    def test_result_store_defaults_to_empty(self):
        from repro.sim.rls_sim import StalenessResult

        result = StalenessResult(
            mode="full",
            samples=0,
            stale_fraction=0.0,
            miss_fraction=0.0,
            ghost_fraction=0.0,
            bytes_sent=0.0,
            updates_sent=0,
        )
        assert isinstance(result.store, SeriesStore)
        assert result.store.keys() == []
