"""BENCH_<name>.json trajectory artifacts (schema in docs/OBSERVABILITY.md)."""

from __future__ import annotations

import json

import pytest

from benchmarks.common import (
    ARTIFACT_DIR_ENV,
    artifact_dir,
    attach_collector,
    snapshot_p95s,
    write_bench_artifact,
)
from repro.obs.analyze import Detection
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import SeriesStore


@pytest.fixture
def artifacts(tmp_path, monkeypatch):
    monkeypatch.setenv(ARTIFACT_DIR_ENV, str(tmp_path))
    return tmp_path


class TestArtifactDir:
    def test_env_override(self, artifacts):
        assert artifact_dir() == artifacts

    def test_default(self, monkeypatch):
        monkeypatch.delenv(ARTIFACT_DIR_ENV, raising=False)
        assert artifact_dir().name == "bench_artifacts"


class TestWriteBenchArtifact:
    def test_schema(self, artifacts):
        store = SeriesStore()
        store.record("lrc.add_rate", 0.0, 100.0)
        store.record("lrc.add_rate", 1.0, 80.0)
        detection = Detection(kind="sawtooth", summary="s", details={"period": 2.0})
        path = write_bench_artifact(
            "unittest",
            series=store.to_dict(),
            detections=[detection, {"kind": "other", "summary": "dict-shaped"}],
            meta={"trials": 2},
        )
        assert path == artifacts / "BENCH_unittest.json"
        payload = json.loads(path.read_text())
        assert payload["name"] == "unittest"
        assert payload["created"] > 0
        assert isinstance(payload["scale"], float)
        assert payload["series"] == {"lrc.add_rate": [[0.0, 100.0], [1.0, 80.0]]}
        assert payload["detections"][0]["kind"] == "sawtooth"
        assert payload["detections"][0]["details"]["period"] == 2.0
        assert payload["detections"][1] == {"kind": "other", "summary": "dict-shaped"}
        assert payload["meta"] == {"trials": 2}
        assert "nodes" not in payload

    def test_nodes_section_and_coercion(self, artifacts):
        node_store = SeriesStore()
        node_store.record("ops:rate", 1, 5)  # ints coerce to floats
        path = write_bench_artifact(
            "nodes", series={}, nodes={"lrc-1": node_store.to_dict()}
        )
        payload = json.loads(path.read_text())
        assert payload["nodes"] == {"lrc-1": {"ops:rate": [[1.0, 5.0]]}}

    def test_creates_missing_directory(self, tmp_path, monkeypatch):
        nested = tmp_path / "a" / "b"
        monkeypatch.setenv(ARTIFACT_DIR_ENV, str(nested))
        path = write_bench_artifact("deep", series={})
        assert path.exists() and path.parent == nested


class TestRunTrajectory:
    def test_reruns_accumulate_run_records(self, artifacts):
        write_bench_artifact("traj", series={"r": [[1.0, 10.0]]}, seed=7)
        path = write_bench_artifact("traj", series={"r": [[1.0, 12.0]]}, seed=8)
        payload = json.loads(path.read_text())
        runs = payload["runs"]
        assert len(runs) == 2
        assert runs[0]["series"] == {"r": [[1.0, 10.0]]}
        assert runs[1]["series"] == {"r": [[1.0, 12.0]]}
        assert runs[0]["seed"] == 7 and runs[1]["seed"] == 8
        # Top-level keys mirror the latest run, so one-shot consumers
        # keep working.
        assert payload["series"] == {"r": [[1.0, 12.0]]}

    def test_run_record_fields(self, artifacts):
        path = write_bench_artifact(
            "fields", series={"s": [[0.0, 1.0]]}, meta={"x_axis": "t"}, seed=3
        )
        (run,) = json.loads(path.read_text())["runs"]
        assert set(run) == {
            "created", "scale", "git_sha", "seed", "series", "detections",
            "meta",
        }
        assert run["created"] > 0
        assert isinstance(run["git_sha"], str) and run["git_sha"]
        assert run["meta"] == {"x_axis": "t"}

    def test_seed_defaults_to_none(self, artifacts):
        path = write_bench_artifact("noseed", series={})
        (run,) = json.loads(path.read_text())["runs"]
        assert run["seed"] is None

    def test_runs_capped(self, artifacts):
        from benchmarks.common import MAX_ARTIFACT_RUNS

        path = artifacts / "BENCH_capped.json"
        stale = [{"created": float(i), "series": {}} for i in range(MAX_ARTIFACT_RUNS)]
        path.write_text(json.dumps({"name": "capped", "runs": stale}))
        write_bench_artifact("capped", series={"fresh": [[0.0, 1.0]]})
        runs = json.loads(path.read_text())["runs"]
        assert len(runs) == MAX_ARTIFACT_RUNS
        # Oldest dropped, newest appended.
        assert runs[0]["created"] == 1.0
        assert runs[-1]["series"] == {"fresh": [[0.0, 1.0]]}

    def test_corrupt_existing_artifact_starts_fresh(self, artifacts):
        path = artifacts / "BENCH_corrupt.json"
        path.write_text("{not json")
        write_bench_artifact("corrupt", series={})
        assert len(json.loads(path.read_text())["runs"]) == 1


class TestBenchHelpers:
    def test_snapshot_p95s_skips_empty_histograms(self):
        registry = MetricsRegistry()
        registry.histogram("idle")  # registered but never observed
        registry.histogram("busy").observe(0.010)
        p95s = snapshot_p95s(registry.snapshot())
        assert set(p95s) == {"busy"}
        assert p95s["busy"] > 0

    def test_attach_collector_is_primed(self, server):
        collector = attach_collector(server)
        assert collector.rounds == 1
        assert collector.node_names == [server.config.name]
        # The very next scrape already yields rates (baseline exists).
        server.metrics.counter("rpc.requests").inc(10)
        sample = collector.scrape_once(now=2.0)
        assert sample.nodes[server.config.name].ops_rate == 5.0
        assert collector.store.latest("cluster.ops_rate") == 5.0
