"""benchmarks/compare.py: artifact regression diffing (both modes)."""

from __future__ import annotations

import json

import pytest

from benchmarks.compare import (
    LOWER_IS_BETTER_MARKERS,
    compare_dirs,
    compare_series,
    compare_trajectory,
    main,
)


def write_artifact(directory, name, series, runs=None):
    payload = {"name": name, "series": series}
    if runs is not None:
        payload["runs"] = runs
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload))
    return path


def points(values):
    return [[float(i), float(v)] for i, v in enumerate(values)]


class TestCompareSeries:
    def test_matching_rates_pass(self):
        current = {"lrc.query_rate": points([100, 102])}
        baseline = {"lrc.query_rate": points([101, 99])}
        assert compare_series("f", current, baseline, tolerance=0.15) == []

    def test_rate_drop_flagged(self):
        current = {"lrc.query_rate": points([50, 50])}
        baseline = {"lrc.query_rate": points([100, 100])}
        (det,) = compare_series("f", current, baseline, tolerance=0.15)
        assert det.kind == "baseline_regression"
        assert det.severity == "critical"  # 50% drop > 2 * 0.15
        assert det.details["artifact"] == "f"
        assert det.details["series"] == "lrc.query_rate"
        assert "f:lrc.query_rate" in det.summary

    def test_rate_improvement_not_flagged(self):
        current = {"r": points([200])}
        baseline = {"r": points([100])}
        assert compare_series("f", current, baseline, tolerance=0.15) == []

    def test_time_series_slowdown_flagged(self):
        """Lower-is-better series invert: a slowdown is the regression."""
        assert "time" in LOWER_IS_BETTER_MARKERS
        current = {"updates.full_time.10000": points([20.0])}
        baseline = {"updates.full_time.10000": points([10.0])}
        (det,) = compare_series("f", current, baseline, tolerance=0.15)
        assert det.kind == "baseline_regression"

    def test_time_series_speedup_not_flagged(self):
        current = {"bloom.generation_time": points([5.0])}
        baseline = {"bloom.generation_time": points([10.0])}
        assert compare_series("f", current, baseline, tolerance=0.15) == []

    def test_unshared_series_ignored(self):
        current = {"only.current": points([1.0])}
        baseline = {"only.baseline": points([100.0])}
        assert compare_series("f", current, baseline, tolerance=0.15) == []


class TestCompareDirs:
    def test_cross_directory_regression(self, tmp_path):
        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        write_artifact(cur, "fig06", {"lrc.query_rate": points([40])})
        write_artifact(base, "fig06", {"lrc.query_rate": points([100])})
        write_artifact(cur, "fig09", {"rli.query_rate": points([100])})
        write_artifact(base, "fig09", {"rli.query_rate": points([100])})
        detections, compared = compare_dirs(cur, base, tolerance=0.15)
        assert compared == 2
        assert len(detections) == 1
        assert detections[0].details["artifact"] == "fig06"

    def test_missing_baseline_skipped(self, tmp_path, capsys):
        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        write_artifact(cur, "solo", {"r": points([1])})
        detections, compared = compare_dirs(cur, base, tolerance=0.15)
        assert detections == [] and compared == 0
        assert "no baseline artifact" in capsys.readouterr().out


class TestCompareTrajectory:
    def test_last_two_runs_compared(self, tmp_path):
        runs = [
            {"series": {"r": points([100])}},
            {"series": {"r": points([100])}},
            {"series": {"r": points([40])}},  # latest run regressed
        ]
        write_artifact(tmp_path, "traj", {"r": points([40])}, runs=runs)
        detections, compared = compare_trajectory(tmp_path, tolerance=0.15)
        assert compared == 1
        assert len(detections) == 1

    def test_single_run_skipped(self, tmp_path, capsys):
        write_artifact(
            tmp_path, "one", {"r": points([1])}, runs=[{"series": {}}]
        )
        detections, compared = compare_trajectory(tmp_path, tolerance=0.15)
        assert detections == [] and compared == 0
        assert "fewer than 2 recorded runs" in capsys.readouterr().out


class TestMain:
    def test_exit_one_on_regression(self, tmp_path, capsys):
        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        write_artifact(cur, "f", {"r": points([10])})
        write_artifact(base, "f", {"r": points([100])})
        assert main([str(cur), str(base)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "1 regression(s) found" in out

    def test_exit_zero_when_clean(self, tmp_path):
        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        write_artifact(cur, "f", {"r": points([100])})
        write_artifact(base, "f", {"r": points([100])})
        assert main([str(cur), str(base)]) == 0

    def test_self_compare_mode(self, tmp_path):
        runs = [{"series": {"r": points([100])}}, {"series": {"r": points([99])}}]
        write_artifact(tmp_path, "f", {"r": points([99])}, runs=runs)
        assert main([str(tmp_path)]) == 0

    def test_tolerance_flag(self, tmp_path):
        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        write_artifact(cur, "f", {"r": points([80])})  # 20% drop
        write_artifact(base, "f", {"r": points([100])})
        assert main([str(cur), str(base)]) == 1
        assert main([str(cur), str(base), "--tolerance", "0.3"]) == 0

    def test_missing_directory_is_usage_error(self, tmp_path):
        assert main([str(tmp_path / "nope")]) == 2

    def test_empty_baseline_dir_exits_zero_with_note(self, tmp_path, capsys):
        # First CI run: current artifacts exist, the baseline cache is
        # empty.  Nothing compared is not a regression.
        cur, base = tmp_path / "cur", tmp_path / "base"
        cur.mkdir(), base.mkdir()
        write_artifact(cur, "f", {"r": points([100])})
        assert main([str(cur), str(base)]) == 0
        assert "no baseline to compare against" in capsys.readouterr().out

    def test_single_run_trajectory_exits_zero_with_note(
        self, tmp_path, capsys
    ):
        # Fresh checkout self-compare: every artifact has one run.
        write_artifact(
            tmp_path, "f", {"r": points([100])},
            runs=[{"series": {"r": points([100])}}],
        )
        assert main([str(tmp_path)]) == 0
        assert "no baseline to compare against" in capsys.readouterr().out
