"""Public-API consistency: exports resolve, docs' quickstarts actually run."""

import pathlib
import re

import pytest

import repro
import repro.core
import repro.db
import repro.net
import repro.obs
import repro.security
import repro.sim
import repro.workload

REPO = pathlib.Path(__file__).resolve().parents[1]


@pytest.mark.parametrize(
    "module",
    [repro, repro.core, repro.db, repro.net, repro.obs, repro.security,
     repro.sim, repro.workload],
)
def test_all_exports_resolve(module):
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_obs_exports_profiler_and_flight_surface():
    """The profiling/flight-recorder names are part of the public surface."""
    for name in (
        "SamplingProfiler",
        "StackProfile",
        "FlightRecorder",
        "FlightEvent",
        "register_thread",
        "unregister_thread",
        "thread_role",
        "fold_stack",
        "detect_stuck_threads",
    ):
        assert name in repro.obs.__all__, f"repro.obs.__all__ missing {name}"
        assert hasattr(repro.obs, name)


def test_version_matches_pyproject():
    pyproject = (REPO / "pyproject.toml").read_text()
    match = re.search(r'^version = "([^"]+)"', pyproject, re.M)
    assert match and repro.__version__ == match.group(1)


def test_package_docstring_example_runs():
    """The quickstart in repro.__doc__ must execute verbatim."""
    doc = repro.__doc__
    match = re.search(r"Quickstart::\n\n((?:    .+\n)+)", doc)
    assert match, "no quickstart block in package docstring"
    code = "\n".join(line[4:] for line in match.group(1).splitlines())
    exec(compile(code, "<repro.__doc__>", "exec"), {})


def test_readme_quickstart_runs():
    """The README's first python block must execute verbatim."""
    readme = (REPO / "README.md").read_text()
    match = re.search(r"```python\n(.*?)```", readme, re.S)
    assert match, "no python block in README"
    exec(compile(match.group(1), "<README.md>", "exec"), {})


def test_every_public_module_has_docstring():
    missing = []
    for path in (REPO / "src" / "repro").rglob("*.py"):
        first_line = path.read_text().lstrip()[:3]
        if first_line not in ('"""', "'''"):
            missing.append(str(path))
    assert missing == [], f"modules without docstrings: {missing}"


def test_design_doc_mentions_every_subpackage():
    design = (REPO / "DESIGN.md").read_text()
    for pkg in ("repro.db", "repro.net", "repro.security", "repro.sim",
                "repro.core", "repro.workload"):
        assert pkg in design, f"{pkg} missing from DESIGN.md"


def test_experiments_doc_covers_every_artifact():
    experiments = (REPO / "EXPERIMENTS.md").read_text()
    for artifact in [f"Figure {i}" for i in range(4, 14)] + ["Table 3"]:
        assert artifact in experiments, f"{artifact} missing from EXPERIMENTS.md"
