"""FailureSchedule / flaky-wrapper semantics the rest of the suite leans on."""

import threading

import pytest

from repro.testing import FailureSchedule, FaultInjected, FlakySink
from repro.testing.faults import NullSink


class TestFailureSchedule:
    def test_pattern_parses_fails_and_successes(self):
        schedule = FailureSchedule.pattern("FF.")
        assert schedule.next_outcome() is True
        assert schedule.next_outcome() is True
        assert schedule.next_outcome() is False
        # Past the script: the default (succeed) applies forever.
        assert schedule.next_outcome() is False
        assert schedule.calls == 4
        assert schedule.failures == 2

    def test_fail_first(self):
        schedule = FailureSchedule.fail_first(2)
        outcomes = [schedule.next_outcome() for _ in range(4)]
        assert outcomes == [True, True, False, False]

    def test_always_fails(self):
        schedule = FailureSchedule.always()
        assert all(schedule.next_outcome() for _ in range(5))

    def test_check_raises_connection_error_subclass(self):
        schedule = FailureSchedule.fail_first(1)
        with pytest.raises(FaultInjected) as excinfo:
            schedule.check("push")
        assert isinstance(excinfo.value, ConnectionError)
        schedule.check("push")  # second slot succeeds silently

    def test_thread_safety_each_caller_consumes_distinct_slot(self):
        schedule = FailureSchedule.fail_first(50)
        results = []
        lock = threading.Lock()

        def worker():
            outcome = schedule.next_outcome()
            with lock:
                results.append(outcome)

        threads = [threading.Thread(target=worker) for _ in range(100)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(results) == 50
        assert schedule.calls == 100


class TestFlakySink:
    def test_records_only_delivered_updates(self):
        sink = FlakySink(NullSink(), FailureSchedule.pattern("F."))
        with pytest.raises(FaultInjected):
            sink.incremental_update("lrc", ["a"], [])
        sink.incremental_update("lrc", ["b"], [])
        assert sink.incremental == [("lrc", ["b"], [])]

    def test_one_slot_per_push_any_flavour(self):
        schedule = FailureSchedule.pattern("F..")
        sink = FlakySink(NullSink(), schedule)
        with pytest.raises(FaultInjected):
            sink.full_update("lrc", ["a"])
        sink.bloom_update("lrc", b"\x00", 8, 3, 1)
        sink.full_update("lrc", ["a"])
        assert schedule.calls == 3
        assert len(sink.bloom) == 1 and len(sink.full) == 1
