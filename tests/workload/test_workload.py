"""Workload generators, load driver, and trial statistics."""

import pytest

from repro.core.client import connect
from repro.core.config import ServerRole
from repro.workload.driver import LoadDriver
from repro.workload.names import (
    MappingSet,
    esg_names,
    ligo_names,
    pegasus_names,
    pfn_for,
    sequential_names,
)
from repro.workload.scenarios import (
    loaded_lrc_server,
    loaded_rli_server_bloom,
    loaded_rli_server_uncompressed,
)
from repro.workload.stats import run_trials, summarize


class TestNameGenerators:
    def test_sequential_deterministic_and_unique(self):
        names = sequential_names(100)
        assert names == sequential_names(100)
        assert len(set(names)) == 100

    def test_sequential_start_offset(self):
        assert sequential_names(2, start=5)[0] == "lfn000000005"

    def test_ligo_shape(self):
        names = ligo_names(6)
        assert all(n.endswith(".gwf") for n in names)
        assert names[0].startswith("H1-") and names[1].startswith("L1-")
        assert len(set(names)) == 6

    def test_esg_shape(self):
        names = esg_names(10)
        assert all(n.endswith(".nc") for n in names)
        assert len(set(names)) == 10

    def test_pegasus_shape(self):
        names = pegasus_names(8)
        assert all(n.startswith("montage/job") for n in names)
        assert len(set(names)) == 8

    def test_pfn_deterministic(self):
        assert pfn_for("lfn1", "siteA", 2) == pfn_for("lfn1", "siteA", 2)
        assert pfn_for("lfn1", "siteA", 1) != pfn_for("lfn1", "siteA", 2)


class TestMappingSet:
    def test_pairs_count(self):
        ms = MappingSet(count=10, replicas=3)
        assert len(list(ms.pairs())) == 30

    def test_first_replica_pairs(self):
        ms = MappingSet(count=5)
        pairs = ms.first_replica_pairs()
        assert len(pairs) == 5
        assert pairs[0][1].endswith(pairs[0][0])

    def test_random_lfns_within_range(self):
        ms = MappingSet(count=100)
        sample = ms.random_lfns(50, seed=1)
        lfns = set(ms.lfns())
        assert all(name in lfns for name in sample)

    def test_random_lfns_seeded(self):
        ms = MappingSet(count=100)
        assert ms.random_lfns(10, seed=7) == ms.random_lfns(10, seed=7)


class TestTrialStats:
    def test_mean_and_stdev(self):
        stats = summarize([10.0, 12.0, 14.0])
        assert stats.mean == 12.0
        assert stats.stdev == pytest.approx(2.0)
        assert stats.minimum == 10.0 and stats.maximum == 14.0

    def test_single_trial_zero_stdev(self):
        assert summarize([5.0]).stdev == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_run_trials_with_reset(self):
        calls = {"trial": 0, "reset": 0}

        def trial():
            calls["trial"] += 1
            return 100.0

        def reset():
            calls["reset"] += 1

        stats = run_trials(trial, trials=5, reset=reset)
        assert calls == {"trial": 5, "reset": 4}  # no reset after last
        assert stats.mean == 100.0


class TestLoadDriver:
    def test_query_load(self, make_server):
        server = make_server(ServerRole.LRC)
        client = connect(server.config.name)
        client.bulk_create([(f"l{i}", f"p{i}") for i in range(20)])
        client.close()
        driver = LoadDriver(
            server_name=server.config.name,
            clients=2,
            threads_per_client=3,
            total_operations=120,
        )
        lfns = [f"l{i}" for i in range(20)]
        result = driver.run(LoadDriver.query_op(lfns))
        assert result.operations == 120
        assert result.errors == 0
        assert result.rate > 0
        assert len(result.per_thread_ops) == 6

    def test_add_load_unique_indexes(self, make_server):
        server = make_server(ServerRole.LRC)
        lfns = [f"add{i}" for i in range(60)]
        driver = LoadDriver(
            server_name=server.config.name,
            clients=1,
            threads_per_client=4,
            total_operations=60,
        )
        result = driver.run(LoadDriver.add_op(lfns, lambda l: f"pfn-{l}"))
        assert result.errors == 0
        assert server.lrc.lfn_count() == 60

    def test_errors_counted_not_fatal(self, make_server):
        server = make_server(ServerRole.LRC)
        driver = LoadDriver(
            server_name=server.config.name,
            clients=1,
            threads_per_client=2,
            total_operations=10,
        )
        result = driver.run(LoadDriver.query_op(["missing"]))  # all raise
        assert result.errors == 10
        assert result.operations == 10

    def test_uneven_split_covers_all_ops(self, make_server):
        server = make_server(ServerRole.LRC)
        connect(server.config.name).bulk_create([("x", "p")])
        driver = LoadDriver(
            server_name=server.config.name,
            clients=1,
            threads_per_client=3,
            total_operations=10,  # 10 = 4+3+3
        )
        result = driver.run(LoadDriver.query_op(["x"]))
        assert result.operations == 10
        assert sorted(result.per_thread_ops) == [3, 3, 4]

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            LoadDriver(server_name="x", clients=0, threads_per_client=0).run(
                lambda c, i: None
            )


class TestScenarios:
    def test_loaded_lrc(self):
        server, mappings = loaded_lrc_server(50, name="scenario-lrc")
        try:
            assert server.lrc.lfn_count() == 50
            lfn = mappings.lfns()[7]
            assert server.lrc.get_mappings(lfn)
        finally:
            server.stop()

    def test_loaded_lrc_with_replicas(self):
        server, mappings = loaded_lrc_server(
            10, name="scenario-lrc-r", replicas=3, sync_latency=0.0
        )
        try:
            assert server.lrc.mapping_count() == 30
        finally:
            server.stop()

    def test_loaded_lrc_flush_applied_after_load(self):
        server, _ = loaded_lrc_server(
            5, name="scenario-flush", flush_on_commit=True, sync_latency=0.0
        )
        try:
            assert server.engine.flush_on_commit
        finally:
            server.stop()

    def test_loaded_rli_uncompressed(self):
        server, lfns = loaded_rli_server_uncompressed(
            30, num_lrcs=3, name="scenario-rli"
        )
        try:
            assert len(server.rli.query(lfns[0])) == 3
        finally:
            server.stop()

    def test_loaded_rli_bloom(self):
        server, lfns = loaded_rli_server_bloom(
            100, num_filters=4, name="scenario-rli-b"
        )
        try:
            assert server.rli.bloom_filter_count() == 4
            assert len(server.rli.query(lfns[0])) == 4
        finally:
            server.stop()
